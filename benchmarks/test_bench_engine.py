"""Engine throughput smoke: the batch fast path must not be slower.

Runs one scheme over a 50-step trace through the serial
``DatacenterSimulator`` and through the engine's vectorised, cached
path, timing the *stepping* phase only (simulators are constructed
outside the timed region; the engine's ``EngineMetrics.step_time_s``
isolates the same phase).  Asserts the engine is at least as fast as
serial within a small headroom, and bit-identical.

A second benchmark pins the whole-trace kernel pipeline: on a
1,000-step x 200-server trace the ``"kernel"`` mode must deliver at
least :data:`KERNEL_SPEEDUP_FLOOR` x the per-step vectorised
(``"step"``) throughput.  ``measure_kernel_throughput`` is shared with
``benchmarks/check_engine_baseline.py``, which compares fresh numbers
against the committed ``BENCH_engine.json`` baseline in CI.
"""

import time

import pytest

from repro.core.config import teg_original
from repro.core.engine import simulate
from repro.core.simulator import DatacenterSimulator
from repro.workloads.synthetic import common_trace

from bench_utils import print_table

ROUNDS = 3
#: The engine may be up to this factor slower before the smoke fails;
#: in practice it is several times faster (cache + vectorisation).
HEADROOM = 1.10

#: The kernel benchmark scenario (ISSUE 3 acceptance scenario).
KERNEL_TRACE_KWARGS = dict(n_servers=200, duration_s=1000 * 300.0,
                           interval_s=300.0, seed=7)
#: Minimum kernel-vs-step speedup on that scenario.  Measured ~20x on
#: a developer container; 3x leaves room for slow CI runners.
KERNEL_SPEEDUP_FLOOR = 3.0


def _fifty_step_trace():
    return common_trace(n_servers=100, duration_s=50 * 300.0,
                        interval_s=300.0, seed=7)


def measure_kernel_throughput(rounds: int = ROUNDS) -> dict:
    """Kernel vs per-step vectorised throughput on the 1,000 x 200 trace.

    Measures three variants — per-step vectorised, kernel with
    telemetry off (the default) and kernel with a live ``repro.obs``
    session — and returns a plain dict so the baseline checker can
    serialise it.  Bit-identity is asserted across all three so a
    fast-but-wrong kernel (or a telemetry hook that perturbs physics)
    can never look good.
    """
    trace = common_trace(**KERNEL_TRACE_KWARGS)
    config = teg_original()
    variants = (
        ("step", dict(mode="step")),
        ("kernel", dict(mode="kernel")),
        ("kernel+obs", dict(mode="kernel", telemetry=True)),
    )
    measured = {}
    results = {}
    for name, kwargs in variants:
        best = None
        for _ in range(rounds):
            result = simulate(trace, config, **kwargs)
            step_time = result.metrics.step_time_s
            best = step_time if best is None else min(best, step_time)
            results[name] = result
        measured[name] = trace.n_steps / best
    assert results["kernel"].records == results["step"].records
    assert results["kernel+obs"].records == results["kernel"].records
    assert results["kernel+obs"].telemetry is not None
    kernel_metrics = results["kernel"].metrics
    return {
        "trace": dict(KERNEL_TRACE_KWARGS),
        "n_steps": trace.n_steps,
        "step_steps_per_s": round(measured["step"], 1),
        "kernel_steps_per_s": round(measured["kernel"], 1),
        "kernel_telemetry_steps_per_s": round(measured["kernel+obs"], 1),
        "speedup": round(measured["kernel"] / measured["step"], 2),
        "telemetry_overhead": round(
            1.0 - measured["kernel+obs"] / measured["kernel"], 4),
        "kernel_phases": kernel_metrics.kernel.summary(),
    }


@pytest.mark.benchmark
def test_bench_kernel_speedup_over_step_mode(benchmark):
    report = benchmark.pedantic(measure_kernel_throughput,
                                rounds=1, iterations=1)
    print_table(
        "Kernel vs per-step vectorised — 1,000-step trace, 200 servers",
        ["mode", "steps/s"],
        [
            ["step", report["step_steps_per_s"]],
            ["kernel", report["kernel_steps_per_s"]],
            ["speedup", report["speedup"]],
        ])
    assert report["speedup"] >= KERNEL_SPEEDUP_FLOOR, (
        f"kernel speedup {report['speedup']:.2f}x below the "
        f"{KERNEL_SPEEDUP_FLOOR:.0f}x floor")


@pytest.mark.benchmark
def test_bench_engine_not_slower_than_serial(benchmark):
    trace = _fifty_step_trace()
    config = teg_original()
    assert trace.n_steps == 50

    serial_times = []
    serial_result = None
    for _ in range(ROUNDS):
        simulator = DatacenterSimulator(trace, config)  # untimed setup
        started = time.perf_counter()
        serial_result = simulator.run()
        serial_times.append(time.perf_counter() - started)
    serial_s = min(serial_times)

    engine_results = benchmark.pedantic(
        lambda: [simulate(trace, config) for _ in range(ROUNDS)],
        rounds=1, iterations=1)
    engine_s = min(result.metrics.step_time_s
                   for result in engine_results)
    engine_result = engine_results[-1]

    print_table(
        "Engine vs serial — 50-step common trace, 100 servers",
        ["path", "step time s", "steps/s", "cache hit rate"],
        [
            ["serial", serial_s, 50.0 / serial_s, float("nan")],
            ["engine", engine_s, 50.0 / engine_s,
             engine_result.metrics.cache_hit_rate],
        ])

    assert engine_result.records == serial_result.records
    assert engine_result.metrics.cache_hit_rate > 0
    assert engine_s <= serial_s * HEADROOM, (
        f"engine stepping {engine_s:.3f}s vs serial {serial_s:.3f}s")

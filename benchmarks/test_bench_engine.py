"""Engine throughput smoke: the batch fast path must not be slower.

Runs one scheme over a 50-step trace through the serial
``DatacenterSimulator`` and through the engine's vectorised, cached
path, timing the *stepping* phase only (simulators are constructed
outside the timed region; the engine's ``EngineMetrics.step_time_s``
isolates the same phase).  Asserts the engine is at least as fast as
serial within a small headroom, and bit-identical.
"""

import time

import pytest

from repro.core.config import teg_original
from repro.core.engine import simulate
from repro.core.simulator import DatacenterSimulator
from repro.workloads.synthetic import common_trace

from bench_utils import print_table

ROUNDS = 3
#: The engine may be up to this factor slower before the smoke fails;
#: in practice it is several times faster (cache + vectorisation).
HEADROOM = 1.10


def _fifty_step_trace():
    return common_trace(n_servers=100, duration_s=50 * 300.0,
                        interval_s=300.0, seed=7)


@pytest.mark.benchmark
def test_bench_engine_not_slower_than_serial(benchmark):
    trace = _fifty_step_trace()
    config = teg_original()
    assert trace.n_steps == 50

    serial_times = []
    serial_result = None
    for _ in range(ROUNDS):
        simulator = DatacenterSimulator(trace, config)  # untimed setup
        started = time.perf_counter()
        serial_result = simulator.run()
        serial_times.append(time.perf_counter() - started)
    serial_s = min(serial_times)

    engine_results = benchmark.pedantic(
        lambda: [simulate(trace, config) for _ in range(ROUNDS)],
        rounds=1, iterations=1)
    engine_s = min(result.metrics.step_time_s
                   for result in engine_results)
    engine_result = engine_results[-1]

    print_table(
        "Engine vs serial — 50-step common trace, 100 servers",
        ["path", "step time s", "steps/s", "cache hit rate"],
        [
            ["serial", serial_s, 50.0 / serial_s, float("nan")],
            ["engine", engine_s, 50.0 / engine_s,
             engine_result.metrics.cache_hit_rate],
        ])

    assert engine_result.records == serial_result.records
    assert engine_result.metrics.cache_hit_rate > 0
    assert engine_s <= serial_s * HEADROOM, (
        f"engine stepping {engine_s:.3f}s vs serial {serial_s:.3f}s")

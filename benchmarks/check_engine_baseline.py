"""Compare engine throughput against the committed baselines.

Usage (from the repository root)::

    PYTHONPATH=src:benchmarks python benchmarks/check_engine_baseline.py
    PYTHONPATH=src:benchmarks python benchmarks/check_engine_baseline.py --all
    PYTHONPATH=src:benchmarks python benchmarks/check_engine_baseline.py --update

Without ``--update`` the script re-measures a scenario and fails
(exit 1) if any checked figure drops below ``TOLERANCE`` x its
committed baseline.  The tolerance is deliberately generous — CI
runners are noisy and heterogeneous; the check exists to catch large,
real regressions (an accidentally quadratic loop, a lost fast path),
not small scheduling jitter.  With ``--update`` it rewrites the
selected baseline(s) from a fresh measurement instead.

Scenarios (``--all`` runs every one in a single invocation — the CI
entry point):

* default (``BENCH_engine.json``): kernel and per-step throughput on
  the pinned 1,000-step x 200-server trace.
* ``--fleet`` (``BENCH_fleet.json``): the fleet-scale sharded scenario
  (12,500 servers x 8,900 steps); the measurement itself asserts
  shard/unshard bit-parity and the bounded worker payload, and the
  check enforces the checkpoint-off envelope — with no checkpoint
  directory configured the sharded path must stay within 3 % of its
  committed baseline (machine-normalised against the unsharded
  kernel, which carries no checkpoint plumbing).
* ``--cache`` (``BENCH_cache.json``): the result-cache scenario (the
  same fleet trace through ``simulate_sharded``): the warm-hit speedup
  floor and the cache-off envelope, normalised the same way.
* ``--pipeline`` (``BENCH_pipeline.json``): the batched-decision A/B —
  the kernel's decide phase with the vectorised path on versus
  ``REPRO_KERNEL_BATCH=0``, enforcing the committed speedup floor.

``--report-dir DIR`` additionally writes each scenario's fresh
measurement as ``DIR/BENCH_<scenario>.json`` so CI can archive the
numbers (the ``bench-history`` artifact) without touching the
committed baselines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: A checked figure fails below this fraction of its baseline.
TOLERANCE = 0.25

#: The default scenario's figures: per-step vectorised, kernel with
#: telemetry off, and kernel under a live repro.obs session (so a
#: telemetry-hook regression is caught even though the default path
#: has telemetry disabled).
CHECKED_FIELDS = ("step_steps_per_s", "kernel_steps_per_s",
                  "kernel_telemetry_steps_per_s")

#: The fleet (``--fleet``) figures, from ``BENCH_fleet.json``: the
#: sharded engine on the 12,500 x 8,900 synthetic-Google scenario.
FLEET_CHECKED_FIELDS = ("sharded_cells_per_s", "unsharded_cells_per_s")

#: The result-cache (``--cache``) figures, from ``BENCH_cache.json``:
#: the cache-off recompute, the kernel normaliser and the warm hit.
CACHE_CHECKED_FIELDS = ("direct_cells_per_s", "kernel_cells_per_s",
                        "warm_cells_per_s")

#: The pipeline (``--pipeline``) figures, from ``BENCH_pipeline.json``:
#: the decide phase with the batch path on and forced off.
PIPELINE_CHECKED_FIELDS = ("batched_decide_steps_per_s",
                           "scalar_decide_steps_per_s")

#: With the result cache *disabled* (``result_cache=False``), the
#: sharded path must stay within this fraction of its committed
#: baseline — same envelope and same kernel normalisation as the
#: checkpoint-off guard (the kernel path shares the cache branches'
#: host but not their cost, so only a cache-plumbing slowdown trips
#: it).
CACHE_OFF_TOLERANCE = 0.03

#: The committed warm-hit speedup may degrade to no less than this
#: floor (the ISSUE 8 acceptance criterion).
CACHE_WARM_SPEEDUP_FLOOR = 20.0

#: With checkpointing *disabled* (the default), the sharded path must
#: stay within this fraction of its committed baseline — the same 3 %
#: envelope the telemetry-off guard uses.  The ratio is normalised by
#: the unsharded kernel figure measured in the same run: the kernel
#: path carries no checkpoint plumbing, so a uniformly slower runner
#: cancels out and only a sharded-path-specific slowdown (the
#: checkpoint branches) can trip the guard.
FLEET_CHECKPOINT_OFF_TOLERANCE = 0.03

#: The batched decide path must stay at least this many times faster
#: than the scalar loop (the ISSUE 9 acceptance criterion).  Phase
#: times come from the same run, so runner speed cancels out.
PIPELINE_DECIDE_SPEEDUP_FLOOR = 3.0


def _measure(scenario: str) -> dict:
    if scenario == "fleet":
        from test_bench_fleet_scale import measure_fleet_throughput

        # Best-of-two: the checkpoint-off envelope is tight (3 %), and
        # single-shot wall times at this scale carry that much jitter.
        return measure_fleet_throughput(rounds=2)
    if scenario == "cache":
        from test_bench_cache import measure_cache_throughput

        return measure_cache_throughput(rounds=2)
    if scenario == "pipeline":
        from test_bench_pipeline import measure_pipeline_throughput

        return measure_pipeline_throughput()
    from test_bench_engine import measure_kernel_throughput

    return measure_kernel_throughput()


SCENARIOS = {
    "engine": (Path(__file__).parent / "BENCH_engine.json",
               CHECKED_FIELDS),
    "fleet": (Path(__file__).parent / "BENCH_fleet.json",
              FLEET_CHECKED_FIELDS),
    "cache": (Path(__file__).parent / "BENCH_cache.json",
              CACHE_CHECKED_FIELDS),
    "pipeline": (Path(__file__).parent / "BENCH_pipeline.json",
                 PIPELINE_CHECKED_FIELDS),
}


def _check_fleet(baseline: dict, report: dict) -> bool:
    failed = False
    print(f"{'shards':<20} baseline "
          f"{baseline.get('n_shards', 0):>10}  "
          f"now {report['n_shards']:>10}")
    print(f"{'payload bytes':<20} baseline "
          f"{baseline.get('payload_bytes', 0):>10}  "
          f"now {report['payload_bytes']:>10}")
    print(f"{'sharded/unsharded':<20} baseline "
          f"{baseline.get('sharded_vs_unsharded', float('nan')):>10.2f}  "
          f"now {report['sharded_vs_unsharded']:>10.2f}")
    if all(baseline.get(f) for f in FLEET_CHECKED_FIELDS):
        direct = (report["sharded_cells_per_s"]
                  / baseline["sharded_cells_per_s"])
        machine = (report["unsharded_cells_per_s"]
                   / baseline["unsharded_cells_per_s"])
        # Take the kinder of the direct and machine-normalised
        # ratios (see FLEET_CHECKPOINT_OFF_TOLERANCE).
        ratio = max(direct, direct / machine)
        ok = ratio >= 1.0 - FLEET_CHECKPOINT_OFF_TOLERANCE
        failed = failed or not ok
        print(f"{'ckpt-off overhead':<20} sharded at {ratio:>9.2f}x "
              f"baseline (floor "
              f"{1.0 - FLEET_CHECKPOINT_OFF_TOLERANCE:.0%})  "
              f"[{'ok' if ok else 'REGRESSION'}]")
    return failed


def _check_cache(baseline: dict, report: dict) -> bool:
    failed = False
    print(f"{'entry bytes':<20} baseline "
          f"{baseline.get('entry_bytes', 0):>10}  "
          f"now {report['entry_bytes']:>10}")
    speedup_ok = report["warm_speedup"] >= CACHE_WARM_SPEEDUP_FLOOR
    failed = failed or not speedup_ok
    print(f"{'warm speedup':<20} baseline "
          f"{baseline.get('warm_speedup', float('nan')):>9.1f}x "
          f"now {report['warm_speedup']:>9.1f}x (floor "
          f"{CACHE_WARM_SPEEDUP_FLOOR:.0f}x)  "
          f"[{'ok' if speedup_ok else 'REGRESSION'}]")
    if all(baseline.get(f) for f in ("direct_cells_per_s",
                                     "kernel_cells_per_s")):
        direct = (report["direct_cells_per_s"]
                  / baseline["direct_cells_per_s"])
        machine = (report["kernel_cells_per_s"]
                   / baseline["kernel_cells_per_s"])
        # Take the kinder of the direct and machine-normalised
        # ratios (see CACHE_OFF_TOLERANCE).
        ratio = max(direct, direct / machine)
        ok = ratio >= 1.0 - CACHE_OFF_TOLERANCE
        failed = failed or not ok
        print(f"{'cache-off overhead':<20} direct at {ratio:>9.2f}x "
              f"baseline (floor {1.0 - CACHE_OFF_TOLERANCE:.0%})  "
              f"[{'ok' if ok else 'REGRESSION'}]")
    return failed


def _check_pipeline(baseline: dict, report: dict) -> bool:
    speedup_ok = (report["decide_speedup"]
                  >= PIPELINE_DECIDE_SPEEDUP_FLOOR)
    print(f"{'decide speedup':<20} baseline "
          f"{baseline.get('decide_speedup', float('nan')):>9.2f}x "
          f"now {report['decide_speedup']:>9.2f}x (floor "
          f"{PIPELINE_DECIDE_SPEEDUP_FLOOR:.0f}x)  "
          f"[{'ok' if speedup_ok else 'REGRESSION'}]")
    return not speedup_ok


def _check_engine(baseline: dict, report: dict) -> bool:
    print(f"{'speedup':<20} baseline {baseline['speedup']:>10.2f}  "
          f"now {report['speedup']:>10.2f}")
    print(f"{'telemetry overhead':<20} baseline "
          f"{baseline.get('telemetry_overhead', float('nan')):>10.2%}  "
          f"now {report['telemetry_overhead']:>10.2%}")
    return False


def run_scenario(scenario: str, baseline_path: Path, *,
                 update: bool = False,
                 report_dir: Path | None = None) -> int:
    """Measure one scenario; check (or ``--update``) its baseline."""
    checked_fields = SCENARIOS[scenario][1]
    print(f"--- {scenario} ({baseline_path.name}) ---")
    report = _measure(scenario)
    if report_dir is not None:
        report_dir.mkdir(parents=True, exist_ok=True)
        out = report_dir / f"BENCH_{scenario}.json"
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"measurement written to {out}")
    if update:
        baseline_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {baseline_path}")
        return 0

    baseline = json.loads(baseline_path.read_text())
    if baseline.get("trace") != report["trace"]:
        print(f"baseline scenario {baseline.get('trace')} does not match "
              f"current scenario {report['trace']}; re-run with --update")
        return 1

    failed = False
    for field in checked_fields:
        if field not in baseline:
            print(f"{field:<20} missing from baseline; re-run with "
                  f"--update")
            failed = True
            continue
        floor = baseline[field] * TOLERANCE
        ratio = report[field] / baseline[field]
        verdict = "ok" if report[field] >= floor else "REGRESSION"
        failed = failed or report[field] < floor
        print(f"{field:<20} baseline {baseline[field]:>10.1f}  "
              f"now {report[field]:>10.1f}  ({ratio:>5.2f}x, floor "
              f"{TOLERANCE:.0%})  [{verdict}]")
    extra = {"engine": _check_engine, "fleet": _check_fleet,
             "cache": _check_cache, "pipeline": _check_pipeline}
    failed = extra[scenario](baseline, report) or failed
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline(s) instead of checking")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: the selected "
                             "scenario's committed BENCH_*.json; "
                             "incompatible with --all)")
    parser.add_argument("--fleet", action="store_true",
                        help="check the fleet-scale sharded scenario "
                             "(12,500 x 8,900) instead of the kernel one")
    parser.add_argument("--cache", action="store_true",
                        help="check the result-cache scenario (fleet "
                             "trace; warm hits and cache-off envelope)")
    parser.add_argument("--pipeline", action="store_true",
                        help="check the batched-decision pipeline "
                             "scenario (decide-phase A/B speedup)")
    parser.add_argument("--all", action="store_true",
                        help="check every committed BENCH_*.json in one "
                             "invocation (the CI entry point)")
    parser.add_argument("--report-dir", type=Path, default=None,
                        metavar="DIR",
                        help="also write each fresh measurement as "
                             "DIR/BENCH_<scenario>.json (for the CI "
                             "bench-history artifact)")
    args = parser.parse_args(argv)
    selected = [name for name, flag in (("fleet", args.fleet),
                                        ("cache", args.cache),
                                        ("pipeline", args.pipeline))
                if flag]
    if len(selected) > 1:
        parser.error("--fleet, --cache and --pipeline are mutually "
                     "exclusive")
    if args.all and (selected or args.baseline):
        parser.error("--all is incompatible with --fleet/--cache/"
                     "--pipeline/--baseline")

    if args.all:
        code = 0
        for scenario, (baseline_path, _) in SCENARIOS.items():
            code = max(code, run_scenario(
                scenario, baseline_path, update=args.update,
                report_dir=args.report_dir))
        return code
    scenario = selected[0] if selected else "engine"
    baseline_path = args.baseline or SCENARIOS[scenario][0]
    return run_scenario(scenario, baseline_path, update=args.update,
                        report_dir=args.report_dir)


if __name__ == "__main__":
    sys.exit(main())

"""Compare engine throughput against the committed baseline.

Usage (from the repository root)::

    PYTHONPATH=src:benchmarks python benchmarks/check_engine_baseline.py
    PYTHONPATH=src:benchmarks python benchmarks/check_engine_baseline.py --update

Without ``--update`` the script re-measures kernel and per-step
throughput on the pinned 1,000-step x 200-server scenario and fails
(exit 1) if either mode drops below ``TOLERANCE`` x its committed
``BENCH_engine.json`` figure.  The tolerance is deliberately generous —
CI runners are noisy and heterogeneous; the check exists to catch
large, real regressions (an accidentally quadratic loop, a lost fast
path), not small scheduling jitter.  With ``--update`` it rewrites the
baseline from a fresh measurement instead.

``--fleet`` switches both measurement and baseline to the fleet-scale
sharded scenario (12,500 servers x 8,900 steps through the sharded
engine, ``BENCH_fleet.json``); the measurement itself asserts
shard/unshard bit-parity and the bounded worker payload, so the CI
step guards correctness at scale as well as throughput.  The fleet
check also enforces the checkpoint-off envelope: with no checkpoint
directory configured, the sharded path must stay within 3 % of its
committed baseline (machine-normalised against the unsharded kernel,
which carries no checkpoint plumbing).

``--cache`` switches to the result-cache scenario (the same fleet
trace through ``simulate_sharded``, ``BENCH_cache.json``): it checks
the warm-hit speedup floor and enforces the cache-off envelope — with
``result_cache=False`` the sharded path must stay within 3 % of its
committed baseline, machine-normalised the same way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from test_bench_engine import measure_kernel_throughput

BASELINE_PATH = Path(__file__).parent / "BENCH_engine.json"
FLEET_BASELINE_PATH = Path(__file__).parent / "BENCH_fleet.json"
CACHE_BASELINE_PATH = Path(__file__).parent / "BENCH_cache.json"

#: A mode fails the check below this fraction of its baseline steps/sec.
TOLERANCE = 0.25

#: The throughput figures the check compares: per-step vectorised,
#: kernel with telemetry off, and kernel under a live repro.obs
#: session (so a telemetry-hook regression is caught even though the
#: default path has telemetry disabled).
CHECKED_FIELDS = ("step_steps_per_s", "kernel_steps_per_s",
                  "kernel_telemetry_steps_per_s")

#: The fleet (``--fleet``) figures, from ``BENCH_fleet.json``: the
#: sharded engine on the 12,500 x 8,900 synthetic-Google scenario.
FLEET_CHECKED_FIELDS = ("sharded_cells_per_s", "unsharded_cells_per_s")

#: The result-cache (``--cache``) figures, from ``BENCH_cache.json``:
#: the cache-off recompute, the kernel normaliser and the warm hit.
CACHE_CHECKED_FIELDS = ("direct_cells_per_s", "kernel_cells_per_s",
                        "warm_cells_per_s")

#: With the result cache *disabled* (``result_cache=False``), the
#: sharded path must stay within this fraction of its committed
#: baseline — same envelope and same kernel normalisation as the
#: checkpoint-off guard (the kernel path shares the cache branches'
#: host but not their cost, so only a cache-plumbing slowdown trips
#: it).
CACHE_OFF_TOLERANCE = 0.03

#: The committed warm-hit speedup may degrade to no less than this
#: floor (the ISSUE 8 acceptance criterion).
CACHE_WARM_SPEEDUP_FLOOR = 20.0

#: With checkpointing *disabled* (the default), the sharded path must
#: stay within this fraction of its committed baseline — the same 3 %
#: envelope the telemetry-off guard uses.  The ratio is normalised by
#: the unsharded kernel figure measured in the same run: the kernel
#: path carries no checkpoint plumbing, so a uniformly slower runner
#: cancels out and only a sharded-path-specific slowdown (the
#: checkpoint branches) can trip the guard.
FLEET_CHECKPOINT_OFF_TOLERANCE = 0.03


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline instead of checking")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: BENCH_engine.json, "
                             "or BENCH_fleet.json with --fleet)")
    parser.add_argument("--fleet", action="store_true",
                        help="check the fleet-scale sharded scenario "
                             "(12,500 x 8,900) instead of the kernel one")
    parser.add_argument("--cache", action="store_true",
                        help="check the result-cache scenario (fleet "
                             "trace; warm hits and cache-off envelope)")
    args = parser.parse_args(argv)
    if args.fleet and args.cache:
        parser.error("--fleet and --cache are mutually exclusive")
    if args.baseline is None:
        args.baseline = (FLEET_BASELINE_PATH if args.fleet
                         else CACHE_BASELINE_PATH if args.cache
                         else BASELINE_PATH)
    checked_fields = (FLEET_CHECKED_FIELDS if args.fleet
                      else CACHE_CHECKED_FIELDS if args.cache
                      else CHECKED_FIELDS)

    if args.fleet:
        from test_bench_fleet_scale import measure_fleet_throughput

        # Best-of-two: the checkpoint-off envelope is tight (3 %), and
        # single-shot wall times at this scale carry that much jitter.
        report = measure_fleet_throughput(rounds=2)
    elif args.cache:
        from test_bench_cache import measure_cache_throughput

        report = measure_cache_throughput(rounds=2)
    else:
        report = measure_kernel_throughput()
    if args.update:
        args.baseline.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    if baseline.get("trace") != report["trace"]:
        print(f"baseline scenario {baseline.get('trace')} does not match "
              f"current scenario {report['trace']}; re-run with --update")
        return 1

    failed = False
    for field in checked_fields:
        if field not in baseline:
            print(f"{field:<20} missing from baseline; re-run with "
                  f"--update")
            failed = True
            continue
        floor = baseline[field] * TOLERANCE
        ratio = report[field] / baseline[field]
        verdict = "ok" if report[field] >= floor else "REGRESSION"
        failed = failed or report[field] < floor
        print(f"{field:<20} baseline {baseline[field]:>10.1f}  "
              f"now {report[field]:>10.1f}  ({ratio:>5.2f}x, floor "
              f"{TOLERANCE:.0%})  [{verdict}]")
    if args.fleet:
        print(f"{'shards':<20} baseline "
              f"{baseline.get('n_shards', 0):>10}  "
              f"now {report['n_shards']:>10}")
        print(f"{'payload bytes':<20} baseline "
              f"{baseline.get('payload_bytes', 0):>10}  "
              f"now {report['payload_bytes']:>10}")
        print(f"{'sharded/unsharded':<20} baseline "
              f"{baseline.get('sharded_vs_unsharded', float('nan')):>10.2f}  "
              f"now {report['sharded_vs_unsharded']:>10.2f}")
        if all(baseline.get(f) for f in FLEET_CHECKED_FIELDS):
            direct = (report["sharded_cells_per_s"]
                      / baseline["sharded_cells_per_s"])
            machine = (report["unsharded_cells_per_s"]
                       / baseline["unsharded_cells_per_s"])
            # Take the kinder of the direct and machine-normalised
            # ratios (see FLEET_CHECKPOINT_OFF_TOLERANCE).
            ratio = max(direct, direct / machine)
            ok = ratio >= 1.0 - FLEET_CHECKPOINT_OFF_TOLERANCE
            failed = failed or not ok
            print(f"{'ckpt-off overhead':<20} sharded at {ratio:>9.2f}x "
                  f"baseline (floor "
                  f"{1.0 - FLEET_CHECKPOINT_OFF_TOLERANCE:.0%})  "
                  f"[{'ok' if ok else 'REGRESSION'}]")
    elif args.cache:
        print(f"{'entry bytes':<20} baseline "
              f"{baseline.get('entry_bytes', 0):>10}  "
              f"now {report['entry_bytes']:>10}")
        speedup_ok = report["warm_speedup"] >= CACHE_WARM_SPEEDUP_FLOOR
        failed = failed or not speedup_ok
        print(f"{'warm speedup':<20} baseline "
              f"{baseline.get('warm_speedup', float('nan')):>9.1f}x "
              f"now {report['warm_speedup']:>9.1f}x (floor "
              f"{CACHE_WARM_SPEEDUP_FLOOR:.0f}x)  "
              f"[{'ok' if speedup_ok else 'REGRESSION'}]")
        if all(baseline.get(f) for f in ("direct_cells_per_s",
                                         "kernel_cells_per_s")):
            direct = (report["direct_cells_per_s"]
                      / baseline["direct_cells_per_s"])
            machine = (report["kernel_cells_per_s"]
                       / baseline["kernel_cells_per_s"])
            # Take the kinder of the direct and machine-normalised
            # ratios (see CACHE_OFF_TOLERANCE).
            ratio = max(direct, direct / machine)
            ok = ratio >= 1.0 - CACHE_OFF_TOLERANCE
            failed = failed or not ok
            print(f"{'cache-off overhead':<20} direct at {ratio:>9.2f}x "
                  f"baseline (floor {1.0 - CACHE_OFF_TOLERANCE:.0%})  "
                  f"[{'ok' if ok else 'REGRESSION'}]")
    else:
        print(f"{'speedup':<20} baseline {baseline['speedup']:>10.2f}  "
              f"now {report['speedup']:>10.2f}")
        print(f"{'telemetry overhead':<20} baseline "
              f"{baseline.get('telemetry_overhead', float('nan')):>10.2%}  "
              f"now {report['telemetry_overhead']:>10.2%}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

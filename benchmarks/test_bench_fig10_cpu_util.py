"""E-F10 — Fig. 10: CPU temperature and frequency vs utilisation.

Regenerates the CPU temperature curves at several coolant temperatures
(flow fixed at 20 L/H, powersave governor).  Paper shape: the frequency
rises, slows past 50 % utilisation and settles at ~2.5 GHz; the CPU
temperature trend follows the frequency/power curve and shifts up with
coolant temperature.
"""

import numpy as np

from repro.constants import CPU_MAX_OPERATING_TEMP_C
from repro.thermal.cpu_model import CoolingSetting, CpuThermalModel

from bench_utils import print_table

UTILS = np.arange(0.0, 1.01, 0.1)
COOLANTS_C = (30.0, 35.0, 40.0, 45.0)


def sweep():
    model = CpuThermalModel()
    temps = {coolant: [model.cpu_temp_c(
        float(u), CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=coolant))
        for u in UTILS] for coolant in COOLANTS_C}
    freqs = [model.frequency_ghz(float(u)) for u in UTILS]
    return temps, freqs


def test_bench_fig10_cpu_temperature_vs_utilisation(benchmark):
    temps, freqs = benchmark(sweep)

    print_table(
        "Fig. 10 — CPU temperature (C) and frequency (GHz) vs utilisation"
        " (flow 20 L/H, powersave)",
        ["utilisation", "freq GHz"] + [f"cool {c:.0f}C"
                                       for c in COOLANTS_C],
        [[f"{u:.0%}", freqs[i]] + [temps[c][i] for c in COOLANTS_C]
         for i, u in enumerate(UTILS)])

    # Frequency plateau at ~2.5 GHz (powersave).
    assert 2.4 < freqs[-1] < 2.6
    # Frequency gain slows beyond the knee.
    assert (freqs[5] - freqs[4]) > (freqs[10] - freqs[9])

    # Temperature monotone in utilisation and in coolant temperature.
    for coolant in COOLANTS_C:
        assert all(b > a for a, b in zip(temps[coolant],
                                         temps[coolant][1:]))
    for i in range(len(UTILS)):
        column = [temps[c][i] for c in COOLANTS_C]
        assert all(b > a for a, b in zip(column, column[1:]))

    # Safety anchor (Sec. II-B): 45 C coolant never exceeds 78.9 C.
    assert max(temps[45.0]) <= CPU_MAX_OPERATING_TEMP_C

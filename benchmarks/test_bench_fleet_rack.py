"""E-AB10 — heterogeneous fleet + rack self-powering.

Two extension claims from the paper's discussion, quantified together:

* Sec. VII: "H2P suits all types of CPUs" — a mixed fleet (the
  prototype Xeon, a high-TDP Xeon, an EPYC-class part) harvests on every
  slice under its own safe temperature, with zero violations;
* Sec. VI-C/VI-D: at rack scale, the harvested power routed through a
  DC bus and a hybrid buffer fully carries the rack's ancillary loads
  (LED lighting plus hot-spot TEC bursts) with surplus exported to the
  servers.
"""

import numpy as np

from repro.fleet import FleetMix
from repro.power import RackPowerSystem
from repro.workloads.synthetic import common_trace

from bench_utils import print_table


def run_study():
    trace = common_trace(n_servers=120, duration_s=12 * 3600.0, seed=29)
    outcomes = FleetMix().run(trace)
    summary = FleetMix.aggregate(outcomes)

    # Feed the prototype slice's generation into one rack's power chain,
    # with a synthetic hot-spot TEC burst mid-run.
    prototype = outcomes[0].result
    tec = np.zeros(len(prototype.records))
    tec[len(tec) // 2:len(tec) // 2 + 6] = 80.0
    telemetry = RackPowerSystem(n_servers=20).simulate(
        prototype.generation_series_w, trace.interval_s, tec)
    return outcomes, summary, telemetry


def test_bench_fleet_and_rack(benchmark):
    outcomes, summary, telemetry = benchmark.pedantic(
        run_study, rounds=1, iterations=1)

    print_table(
        "E-AB10a — heterogeneous fleet slices (TEG_LoadBalance)",
        ["CPU model", "servers", "T_safe C", "gen W/CPU",
         "violations"],
        [[outcome.spec.name, outcome.n_servers,
          outcome.spec.safe_temp_c, outcome.generation_w,
          outcome.result.total_safety_violations]
         for outcome in outcomes])
    print(f"fleet: {summary['fleet_generation_w']:.2f} W/CPU, "
          f"PRE {summary['fleet_pre']:.1%}")
    print_table(
        "E-AB10b — 20-server rack power chain",
        ["metric", "value"],
        [
            ["self-powered fraction", telemetry.self_powered_fraction],
            ["conversion efficiency", telemetry.conversion_efficiency],
            ["exported to servers (kWh)", telemetry.exported_kwh],
            ["grid backup (kWh)",
             float(telemetry.grid_w.sum()
                   * telemetry.times_s[1] / 3600.0 / 1000.0)],
        ])

    # Every CPU model harvests safely.
    for outcome in outcomes:
        assert outcome.generation_w > 2.0, outcome.spec.name
        assert outcome.result.total_safety_violations == 0
    # Fleet aggregate in a sane band.
    assert 3.0 < summary["fleet_generation_w"] < 6.0
    # The rack covers its ancillaries through the TEC burst.
    assert telemetry.self_powered_fraction > 0.95
    assert telemetry.exported_kwh > 0.0

"""Formatting helpers shared by the benchmark harness."""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one experiment's output as an aligned text table."""
    widths = [max(len(str(header)), *(len(_fmt(row[i])) for row in rows))
              for i, header in enumerate(headers)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(_fmt(cell).ljust(w)
                        for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)

"""E-AB14 — cooling-policy ablation: static / lookup / analytic / net.

The paper evaluates one policy (the Step 1-3 lookup search).  This
ablation lines up the library's whole policy family on the same trace
and circulation:

* **static 45 °C** — plain warm-water cooling with no adjustment (what
  a datacenter gets without the paper's control plane);
* **lookup (paper)** — the Step 1-3 measurement-space search;
* **analytic** — continuous inversion of the calibrated model (the
  lookup search's upper bound);
* **analytic, net of pump** — the same optimiser charged for pump power
  (the Sec. IV-B caveat taken seriously).

Shape: lookup ≈ analytic (the grid is fine enough); both clearly beat
static; the pump-aware variant picks lower flows and wins on *net*
power even though its gross harvest is slightly lower.
"""

import numpy as np

from repro.cooling.loop import WaterCirculation
from repro.core.config import SimulationConfig
from repro.core.simulator import DatacenterSimulator
from repro.thermal.cpu_model import CoolingSetting
from repro.thermal.hydraulics import (
    loop_pump_power_w,
    production_manifold,
    prototype_warm_loop,
)
from repro.workloads.synthetic import common_trace

from bench_utils import print_table


def run_policies():
    trace = common_trace(n_servers=100, duration_s=12 * 3600.0, seed=41)
    configs = {
        "static 45C": SimulationConfig(
            name="static", policy="static",
            static_setting=CoolingSetting(flow_l_per_h=50.0,
                                          inlet_temp_c=45.0)),
        "lookup (paper)": SimulationConfig(name="lookup",
                                           policy="lookup"),
        "analytic": SimulationConfig(name="analytic", policy="analytic"),
    }
    scores = {}
    for name, config in configs.items():
        result = DatacenterSimulator(trace, config).run()
        # Two pump accountings: the testbed's bench loop (pessimistic —
        # 2 m of narrow tubing per server) and a production manifold.
        flows = [record.mean_flow_l_per_h for record in result.records]
        inlets = [record.mean_inlet_temp_c for record in result.records]
        bench_pump = float(np.mean([
            loop_pump_power_w(prototype_warm_loop(), f, t)
            for f, t in zip(flows, inlets)]))
        manifold_pump = float(np.mean([
            loop_pump_power_w(production_manifold(), f, t)
            for f, t in zip(flows, inlets)]))
        scores[name] = {
            "generation_w": result.average_generation_w,
            "pump_w": bench_pump,
            "manifold_pump_w": manifold_pump,
            "net_w": result.average_generation_w - bench_pump,
            "manifold_net_w": result.average_generation_w
            - manifold_pump,
            "violations": result.total_safety_violations,
        }

    # The pump-aware analytic policy is evaluated directly (it is not a
    # SimulationConfig preset): same circulation mechanics, per-decision.
    from repro.control.cooling_policy import AnalyticPolicy

    circulation = WaterCirculation(n_servers=20)
    policy = AnalyticPolicy(net_of_pump=True,
                            flow_candidates=(20.0, 50.0, 100.0, 150.0),
                            inlet_max_c=54.5)
    matrix = trace.utilisation[:, :20]
    generation = []
    pump = []
    violations = 0
    for step in range(matrix.shape[0]):
        decision = policy.decide(matrix[step])
        state = circulation.evaluate(matrix[step], decision.setting)
        generation.append(state.mean_generation_w)
        pump.append(loop_pump_power_w(prototype_warm_loop(),
                                      state.setting.flow_l_per_h,
                                      state.setting.inlet_temp_c))
        violations += len(circulation.safety_violations(state))
    manifold_pump = float(np.mean([
        loop_pump_power_w(production_manifold(), s, t)
        for s, t in zip([20.0] * len(pump), [50.0] * len(pump))]))
    scores["analytic net-of-pump"] = {
        "generation_w": float(np.mean(generation)),
        "pump_w": float(np.mean(pump)),
        "manifold_pump_w": manifold_pump,
        "net_w": float(np.mean(generation)) - float(np.mean(pump)),
        "manifold_net_w": float(np.mean(generation)) - manifold_pump,
        "violations": violations,
    }
    return scores


def test_bench_policy_family(benchmark):
    scores = benchmark.pedantic(run_policies, rounds=1, iterations=1)

    print_table(
        "E-AB14 — cooling-policy family on the common trace "
        "(per-server watts; bench-loop vs production-manifold pumps)",
        ["policy", "gen W", "bench pump W", "bench net W",
         "manifold pump W", "manifold net W", "violations"],
        [[name, s["generation_w"], s["pump_w"], s["net_w"],
          s["manifold_pump_w"], s["manifold_net_w"], s["violations"]]
         for name, s in scores.items()])
    print("note: with the testbed's per-server bench plumbing the pump "
          "eats the harvest at high flow — production manifolds (an "
          "order of magnitude less drop) restore the paper's positive "
          "net.")

    static = scores["static 45C"]
    lookup = scores["lookup (paper)"]
    analytic = scores["analytic"]
    net = scores["analytic net-of-pump"]

    # The paper's control plane earns its keep over plain warm water.
    assert lookup["generation_w"] > static["generation_w"] + 0.3
    # Lookup tracks its continuous upper bound closely.
    assert abs(analytic["generation_w"] - lookup["generation_w"]) < 0.5
    # The pump-aware policy sacrifices gross harvest for (bench) net.
    assert net["pump_w"] < lookup["pump_w"]
    assert net["net_w"] > lookup["net_w"]
    # At production-manifold hydraulics every adjusted policy nets
    # positive and the paper's scheme wins outright.
    assert lookup["manifold_net_w"] > 0.0
    assert lookup["manifold_net_w"] > static["manifold_net_w"]
    # Nobody overheats.
    for name, score in scores.items():
        assert score["violations"] == 0, name

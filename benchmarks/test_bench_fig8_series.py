"""E-F8 — Fig. 8: voltage and maximum power vs dT for n TEGs in series.

Regenerates Fig. 8a (open-circuit voltage, linear in dT and in n) and
Fig. 8b (maximum output power, quadratic in dT, linear in n) at the
200 L/H reference flow.  Paper anchors: Voc_n ~= n * v and P_max of
12 TEGs exceeding 1.8 W at dT = 25 C.
"""

import numpy as np

from repro.teg.module import TegString

from bench_utils import print_table

COUNTS = (1, 3, 6, 12)
DELTAS_C = np.arange(0.0, 26.0, 5.0)


def sweep():
    voltage = {}
    power = {}
    for count in COUNTS:
        string = TegString(count=count)
        voltage[count] = [string.open_circuit_voltage_v(float(d))
                          for d in DELTAS_C]
        power[count] = [string.max_power_w(float(d)) for d in DELTAS_C]
    return voltage, power


def test_bench_fig8_series_scaling(benchmark):
    voltage, power = benchmark(sweep)

    print_table(
        "Fig. 8a — open-circuit voltage (V) vs dT for n TEGs in series",
        ["dT (C)"] + [f"n={n}" for n in COUNTS],
        [[f"{d:.0f}"] + [voltage[n][i] for n in COUNTS]
         for i, d in enumerate(DELTAS_C)])
    print_table(
        "Fig. 8b — maximum output power (W) vs dT for n TEGs in series",
        ["dT (C)"] + [f"n={n}" for n in COUNTS],
        [[f"{d:.0f}"] + [power[n][i] for n in COUNTS]
         for i, d in enumerate(DELTAS_C)])

    # Eq. 4: Voc_n = n * v.
    for i in range(len(DELTAS_C)):
        for n in COUNTS:
            assert voltage[n][i] == n * voltage[1][i]

    # Eq. 7: P_n = n * P_1.
    for i in range(len(DELTAS_C)):
        for n in COUNTS:
            assert power[n][i] == n * power[1][i]

    # Paper: P_max of 12 TEGs > 1.8 W beyond dT = 25 C.
    assert power[12][-1] > 1.8

    # Quadratic growth: second differences of P(dT) are constant > 0.
    # (dT = 0 is excluded: the fit's constant term is clamped to zero
    # there, since a TEG cannot generate without a gradient.)
    second = np.diff(power[12][1:], n=2)
    assert np.all(second > 0.0)
    assert np.allclose(second, second[0], rtol=1e-6)

"""E-AB2 — ablation: the Sec. VI-D material roadmap.

Swaps the TEG leg material (Bi2Te3 ZT~1 -> nanostructured bulk ->
Fe2V0.8W0.2Al Heusler ZT~6) and re-evaluates per-server generation, PRE
and the TCO reduction at the paper's operating point.  Paper claim: "once
the new cheap materials of higher ZT are commercially available, a much
wider application of these materials in datacenters is possible".
"""

from repro.economics.tco import TcoModel
from repro.teg.device import PAPER_TEG
from repro.teg.materials import MATERIALS
from repro.teg.module import TegModule

from bench_utils import print_table

WARM_OUT_C = 54.0
COLD_C = 20.0
CPU_POWER_W = 29.0  # Eq. 20 at the traces' mean utilisation


def sweep():
    rows = []
    for name, material in MATERIALS.items():
        device = PAPER_TEG.with_material(material)
        module = TegModule(device=device)
        generation = module.generation_w(WARM_OUT_C, COLD_C)
        pre = generation / CPU_POWER_W
        reduction = TcoModel().breakdown(generation).reduction_fraction
        rows.append([name, material.zt(WARM_OUT_C), generation, pre,
                     100.0 * reduction])
    return rows


def test_bench_ablation_materials(benchmark):
    rows = benchmark(sweep)

    print_table(
        "Ablation E-AB2 — material sensitivity at T_warm_out = 54 C",
        ["material", "ZT @54C", "gen W/server", "PRE", "TCO red. %"],
        rows)

    by_name = {row[0]: row for row in rows}
    bi = by_name["Bi2Te3"]
    heusler = by_name["Fe2V0.8W0.2Al"]

    # The deployed material reproduces the paper's regime.
    assert 2.0 < bi[2] < 6.0
    assert bi[4] < 1.0  # sub-1 % TCO reduction

    # The ZT-6 Heusler flips the economics: several-fold more power.
    assert heusler[2] > 2.0 * bi[2]
    assert heusler[4] > 2.0 * bi[4]

    # Ordering follows ZT.
    sorted_by_zt = sorted(rows, key=lambda row: row[1])
    generation = [row[2] for row in sorted_by_zt]
    assert all(b > a for a, b in zip(generation, generation[1:]))

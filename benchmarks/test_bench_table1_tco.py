"""E-T1 — Table I + Sec. V-D: TCO and break-even.

Regenerates Table I (per-server monthly cost lines), the Eq. 21/22 TCO
with and without H2P, the 0.49 % / 0.57 % reductions, the fleet-level
annual savings and the 920-day break-even point.
"""

from repro.economics.breakeven import BreakEvenAnalysis
from repro.economics.tco import TcoModel

from bench_utils import print_table

GEN_ORIGINAL_W = 3.694
GEN_LOADBALANCE_W = 4.177


def compute():
    model = TcoModel()
    analysis = BreakEvenAnalysis()
    original = model.breakdown(GEN_ORIGINAL_W)
    balance = model.breakdown(GEN_LOADBALANCE_W)
    return model, analysis, original, balance


def test_bench_table1_tco(benchmark):
    model, analysis, original, balance = benchmark(compute)

    print_table(
        "Table I — cost model ($/server/month): measured vs paper",
        ["line", "measured", "paper"],
        [
            ["DCInfraCapEx", model.dc_infra_capex, 21.26],
            ["ServCapEx", model.server_capex, 31.25],
            ["DCInfraOpEx", model.dc_infra_opex, 7.63],
            ["ServOpEx", model.server_opex, 1.56],
            ["TEGCapEx", model.teg_capex_usd_per_month, 0.04],
            ["TEGRev (TEG_Original)", original.teg_revenue_usd, 0.34],
            ["TEGRev (TEG_LoadBalance)", balance.teg_revenue_usd, 0.39],
        ])
    print_table(
        "Sec. V-D — TCO outcomes: measured vs paper",
        ["metric", "measured", "paper"],
        [
            ["TCO_noTEG ($/srv/mo)", original.tco_no_teg_usd, 61.70],
            ["reduction, Original (%)",
             100 * original.reduction_fraction, 0.49],
            ["reduction, LoadBalance (%)",
             100 * balance.reduction_fraction, 0.57],
            ["annual savings, 100k CPUs, Original ($)",
             original.annual_savings_usd(100_000), 350_000],
            ["annual savings, 100k CPUs, LoadBalance ($)",
             balance.annual_savings_usd(100_000), 410_000],
            ["daily energy (kWh)",
             analysis.daily_energy_kwh(GEN_LOADBALANCE_W), 10_024.8],
            ["daily revenue ($)",
             analysis.daily_revenue_usd(GEN_LOADBALANCE_W), 1_303.2],
            ["break-even (days)",
             analysis.break_even_days(GEN_LOADBALANCE_W), 920.0],
        ])

    assert abs(original.reduction_fraction - 0.0049) < 3e-4
    assert abs(balance.reduction_fraction - 0.0057) < 3e-4
    assert abs(analysis.break_even_days(GEN_LOADBALANCE_W) - 920.0) < 5.0

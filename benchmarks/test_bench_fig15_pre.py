"""E-F15 — Fig. 15: power reusing efficiency per trace and scheme.

PRE = TEG generation / CPU consumption (Eq. 19 with Eq. 20 supplying the
consumption).  Paper: Original 12.0/13.8/11.9 %, LoadBalance
13.7/16.2/12.8 % for drastic/irregular/common; 14.23 % LoadBalance
average.
"""

import numpy as np

from bench_utils import print_table

PAPER_PRE = {
    "drastic": (0.120, 0.137),
    "irregular": (0.138, 0.162),
    "common": (0.119, 0.128),
}


def run_all(system, traces):
    return {name: system.compare(trace)
            for name, trace in traces.items()}


def test_bench_fig15_pre(benchmark, h2p_system, eval_traces):
    comparisons = benchmark.pedantic(
        run_all, args=(h2p_system, eval_traces), rounds=1, iterations=1)

    rows = []
    for name, comparison in comparisons.items():
        paper = PAPER_PRE[name]
        rows.append([
            name,
            comparison.baseline.average_pre, paper[0],
            comparison.optimised.average_pre, paper[1],
        ])
    avg_balance = np.mean([c.optimised.average_pre
                           for c in comparisons.values()])
    rows.append(["AVERAGE", float("nan"), float("nan"),
                 avg_balance, 0.1423])
    print_table(
        "Fig. 15 — PRE: measured vs paper",
        ["trace", "orig PRE", "(paper)", "bal PRE", "(paper)"],
        rows)

    for name, comparison in comparisons.items():
        # LoadBalance improves PRE on every trace.
        assert comparison.optimised.average_pre > \
            comparison.baseline.average_pre, name
        # Each PRE lands within a widened paper band.
        assert 0.08 < comparison.baseline.average_pre < 0.20, name
        assert 0.10 < comparison.optimised.average_pre < 0.20, name
    assert abs(avg_balance - 0.1423) < 0.035

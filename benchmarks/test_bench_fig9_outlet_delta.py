"""E-F9 — Fig. 9: outlet-inlet temperature difference of the CPU plate.

Fig. 9a sweeps utilisation x flow (averaged over inlet temperatures);
Fig. 9b sweeps utilisation x inlet temperature at 20 L/H.  Paper shape:
dT_out-in fluctuates within 1-3.5 C and is driven by CPU utilisation,
with the flow rate and inlet temperature having little effect.
"""

import numpy as np

from repro.thermal.cpu_model import OutletDeltaModel

from bench_utils import print_table

UTILS = np.arange(0.0, 1.01, 0.2)
FLOWS = (20.0, 50.0, 100.0, 200.0, 300.0)
INLETS = (30.0, 35.0, 40.0, 45.0)


def sweep():
    model = OutletDeltaModel()
    by_flow = {flow: [np.mean([model.delta_c(u, flow, t) for t in INLETS])
                      for u in UTILS]
               for flow in FLOWS}
    by_inlet = {inlet: [model.delta_c(u, 20.0, inlet) for u in UTILS]
                for inlet in INLETS}
    return by_flow, by_inlet


def test_bench_fig9_outlet_delta(benchmark):
    by_flow, by_inlet = benchmark(sweep)

    print_table(
        "Fig. 9a — dT_out-in (C) vs utilisation and flow "
        "(averaged over inlet temps)",
        ["utilisation"] + [f"{f:.0f} L/H" for f in FLOWS],
        [[f"{u:.0%}"] + [by_flow[f][i] for f in FLOWS]
         for i, u in enumerate(UTILS)])
    print_table(
        "Fig. 9b — dT_out-in (C) vs utilisation and inlet temp "
        "(flow fixed at 20 L/H)",
        ["utilisation"] + [f"{t:.0f} C" for t in INLETS],
        [[f"{u:.0%}"] + [by_inlet[t][i] for t in INLETS]
         for i, u in enumerate(UTILS)])

    # Band: all values within the paper's 1-3.5 C (with slack for the
    # flow correction at 300 L/H).
    values = np.array([by_flow[f] for f in FLOWS])
    assert values.min() > 0.7
    assert values.max() < 3.7

    # Utilisation dominates: the span across u is much larger than the
    # span across flow or inlet at fixed u.
    util_span = values[:, -1].mean() - values[:, 0].mean()
    flow_span = np.abs(values[:, 3] - values[0, 3]).max()
    assert util_span > 2.0 * flow_span
    inlet_values = np.array([by_inlet[t] for t in INLETS])
    inlet_span = (inlet_values[:, 3].max() - inlet_values[:, 3].min())
    assert util_span > 10.0 * inlet_span

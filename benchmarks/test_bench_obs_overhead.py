"""Telemetry overhead guard: disabled observability must stay free.

The ``repro.obs`` hooks sit directly on the kernel hot path
(``kernel.decide`` .. ``kernel.fold`` spans, per-run metric recording),
so this benchmark pins two contracts from ISSUE 5:

* **disabled** — with no telemetry session the hooks reduce to one
  ``ContextVar`` read each, so kernel throughput must stay within
  :data:`DISABLED_TOLERANCE` (3 %) of the committed
  ``BENCH_engine.json`` figure.  Raw steps/sec are machine-dependent,
  so the check accepts the better of two ratios: the direct one (right
  on the machine that wrote the baseline) and one normalised by the
  step-mode ratio measured in the same run (a uniformly slower runner
  cancels out).  A regression specific to the kernel path — where the
  hooks live — fails both.
* **enabled** — a live session records spans, counters and histograms
  for every run; that is allowed to cost something, but no more than
  :data:`ENABLED_MAX_OVERHEAD` of kernel throughput, measured
  same-run so the comparison is noise-free.

Both comparisons reuse ``measure_kernel_throughput`` from
``test_bench_engine.py`` — the same harness that feeds the committed
baseline — so the numbers are directly comparable.
"""

import json
from pathlib import Path

import pytest

from test_bench_engine import (KERNEL_TRACE_KWARGS,
                               measure_kernel_throughput)

from bench_utils import print_table

BASELINE_PATH = Path(__file__).parent / "BENCH_engine.json"

#: Disabled-telemetry kernel throughput must stay within this fraction
#: of the committed baseline (after normalising by step-mode speed).
DISABLED_TOLERANCE = 0.03

#: An enabled session may cost at most this fraction of kernel
#: throughput (same-run comparison; generous because the pinned
#: scenario is short enough that session setup is visible).
ENABLED_MAX_OVERHEAD = 0.25

#: The live scrape endpoint is an idle ``select``-looping thread when
#: nobody scrapes; attaching it may cost at most this fraction of
#: labelled-telemetry batch throughput (same-run, best-of-rounds).
LIVE_ENDPOINT_MAX_OVERHEAD = 0.10


@pytest.mark.benchmark
def test_bench_telemetry_overhead(benchmark):
    baseline = json.loads(BASELINE_PATH.read_text())
    report = benchmark.pedantic(measure_kernel_throughput,
                                rounds=1, iterations=1)

    # Two views of "within 3% of the baseline": the direct ratio (valid
    # on the machine that wrote the baseline) and one normalised by the
    # step-mode ratio (cancels a uniformly slower runner).  Step-mode
    # timing is the noisier of the two, so take whichever is kinder —
    # a kernel-path-specific slowdown (the telemetry hooks) fails both.
    direct_ratio = (report["kernel_steps_per_s"]
                    / baseline["kernel_steps_per_s"])
    machine_scale = (report["step_steps_per_s"]
                     / baseline["step_steps_per_s"])
    normalised_ratio = direct_ratio / machine_scale
    disabled_ratio = max(direct_ratio, normalised_ratio)
    enabled_overhead = report["telemetry_overhead"]

    print_table(
        "Telemetry overhead — 1,000-step trace, 200 servers",
        ["variant", "steps/s", "vs disabled"],
        [
            ["kernel (telemetry off)", report["kernel_steps_per_s"], 1.0],
            ["kernel (telemetry on)",
             report["kernel_telemetry_steps_per_s"],
             1.0 - enabled_overhead],
            ["baseline", baseline["kernel_steps_per_s"],
             round(disabled_ratio, 3)],
        ])

    assert disabled_ratio >= 1.0 - DISABLED_TOLERANCE, (
        f"disabled-telemetry kernel throughput is "
        f"{disabled_ratio:.1%} of the (machine-normalised) baseline; "
        f"floor is {1.0 - DISABLED_TOLERANCE:.0%}")
    assert enabled_overhead <= ENABLED_MAX_OVERHEAD, (
        f"enabled telemetry costs {enabled_overhead:.1%} of kernel "
        f"throughput; budget is {ENABLED_MAX_OVERHEAD:.0%}")


def measure_live_endpoint_overhead(rounds: int = 3) -> dict:
    """Labelled-telemetry batch throughput, endpoint off vs attached.

    Both variants run the pinned kernel scenario through the engine
    with telemetry on — the sessions record fully labelled
    (scheme/trace) series — differing only in whether a live scrape
    endpoint is bound.  Records are asserted identical so the endpoint
    can never look cheap by perturbing the work, and the labelled
    series are asserted present so the measurement cannot silently
    regress to bare names.
    """
    from repro.core.config import teg_original
    from repro.core.engine import BatchSimulationEngine, SimulationJob
    from repro.obs import series_family
    from repro.workloads.synthetic import common_trace

    trace = common_trace(**KERNEL_TRACE_KWARGS)
    measured: dict[str, float] = {}
    batches: dict[str, object] = {}
    for name, extra in (("labelled", {}), ("labelled+live",
                                           {"metrics_port": 0})):
        best = None
        with BatchSimulationEngine(n_workers=1, prefer="serial",
                                   mode="kernel", telemetry=True,
                                   **extra) as engine:
            for _ in range(rounds):
                batch = engine.run([SimulationJob(trace=trace,
                                                  config=teg_original())])
                wall = batch.metrics.wall_time_s
                best = wall if best is None else min(best, wall)
                batches[name] = batch
        measured[name] = trace.n_steps / best
    assert (batches["labelled"].results[0].records
            == batches["labelled+live"].results[0].records)
    counters = (batches["labelled+live"].telemetry.registry
                .snapshot().counters)
    labelled = [key for key in counters
                if "{" in key and series_family(key) == "sim.runs"]
    assert labelled, "expected labelled sim.runs series in the batch"
    return {
        "labelled_steps_per_s": round(measured["labelled"], 1),
        "live_steps_per_s": round(measured["labelled+live"], 1),
        "live_overhead": round(
            1.0 - measured["labelled+live"] / measured["labelled"], 4),
    }


@pytest.mark.benchmark
def test_bench_live_endpoint_overhead(benchmark):
    report = benchmark.pedantic(measure_live_endpoint_overhead,
                                rounds=1, iterations=1)
    print_table(
        "Live endpoint overhead — 1,000-step trace, 200 servers",
        ["variant", "steps/s", "vs labelled"],
        [
            ["labelled telemetry", report["labelled_steps_per_s"], 1.0],
            ["labelled + live endpoint", report["live_steps_per_s"],
             1.0 - report["live_overhead"]],
        ])
    assert report["live_overhead"] <= LIVE_ENDPOINT_MAX_OVERHEAD, (
        f"attaching the live endpoint costs "
        f"{report['live_overhead']:.1%} of labelled-telemetry batch "
        f"throughput; budget is {LIVE_ENDPOINT_MAX_OVERHEAD:.0%}")

"""E-AB5 — ablation: is MPPT worth it over the paper's fixed matched load?

The paper harvests at the nameplate matched load (Sec. III-C).  A TEG's
internal resistance drifts with temperature, so in principle a
maximum-power-point tracker recovers the mismatch.  This ablation runs a
full synthetic day of (ΔT, mean temperature) operating points under the
fixed, perturb-and-observe and oracle load policies, through the DC-DC
conversion chain.

Expected (and honest) outcome: for a *linear* source the mismatch loss
is quadratic in the drift — under 1 % — so the paper's fixed matched
load is justified, and naive P&O can even lose to it.
"""

import numpy as np

from repro.teg.power_electronics import MpptHarvester

from bench_utils import print_table


def operating_day():
    t = np.linspace(0.0, 1.0, 288)  # 5-minute points over 24 h
    deltas = 33.0 + 3.0 * np.sin(2 * np.pi * (t - 0.6))
    means = 40.0 + 7.0 * np.sin(2 * np.pi * (t - 0.6))
    return deltas, means


def sweep():
    harvester = MpptHarvester()
    deltas, means = operating_day()
    return {policy: harvester.run(deltas, means, policy)
            for policy in ("fixed", "mppt", "oracle")}


def test_bench_ablation_mppt(benchmark):
    results = benchmark(sweep)

    oracle = results["oracle"]["harvested_total_w"]
    rows = []
    for policy in ("fixed", "mppt", "oracle"):
        result = results[policy]
        rows.append([
            policy,
            result["harvested_total_w"],
            result["bus_total_w"],
            100.0 * (result["harvested_total_w"] / oracle - 1.0),
        ])
    print_table(
        "Ablation E-AB5 — load policies over one day "
        "(12-TEG module, DC-DC chain)",
        ["policy", "harvested W", "bus W", "vs oracle %"],
        rows)

    fixed = results["fixed"]["harvested_total_w"]
    mppt = results["mppt"]["harvested_total_w"]

    # Oracle bounds everything.
    assert oracle >= fixed and oracle >= mppt
    # The paper's fixed matched load is within 1 % of the oracle.
    assert (oracle - fixed) / oracle < 0.01
    # Naive P&O gains nothing meaningful over fixed (dithering cost).
    assert mppt < fixed * 1.01
    # The conversion chain itself costs ~7-15 %.
    bus = results["fixed"]["bus_total_w"]
    assert 0.80 < bus / fixed < 0.95

"""E-VA — Sec. V-A: economical water-circulation design.

Sweeps the number of servers per circulation for a 1,000-server cluster
and prints the Eq. 12 cost curve (chiller energy + amortised hardware).
Paper shape: both extremes are expensive — one chiller per server wastes
hardware, one giant loop wastes chiller energy (the expected maximum CPU
temperature of n servers grows with n) — so the optimum is interior.
"""

from repro.cooling.circulation_design import CirculationDesignProblem

from bench_utils import print_table

CANDIDATES = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]


def optimise():
    problem = CirculationDesignProblem()
    return problem, problem.optimise(candidates=CANDIDATES)


def test_bench_circulation_design(benchmark):
    problem, result = benchmark.pedantic(optimise, rounds=3, iterations=1)

    rows = []
    for i, n in enumerate(result.candidate_n):
        rows.append([
            int(n),
            result.expected_inlet_reduction_c[i],
            result.energy_costs_usd[i],
            result.hardware_costs_usd[i],
            result.total_costs_usd[i],
        ])
    print_table(
        "Sec. V-A — circulation-size sweep (1,000 servers, 1-year "
        "horizon)",
        ["servers/circ", "E[dT_i] C", "chiller energy $",
         "chiller hw $", "total $ (Eq. 12)"],
        rows)
    print(f"optimal circulation size: {result.best_n} servers "
          f"(total ${result.best_cost_usd:,.0f}/year)")

    # Interior optimum: both extremes lose.
    assert 1 < result.best_n < 1000
    assert result.cost_for(1) > result.best_cost_usd
    assert result.cost_for(1000) > result.best_cost_usd

    # The order-statistics effect: E[dT_i] grows with n.
    reductions = result.expected_inlet_reduction_c
    assert reductions[-1] > reductions[0]

"""E-AB1 — ablation: is chasing flow rate worth it?

Sec. IV-B observes that a larger flow rate buys slightly more TEG voltage
but "more power consumption of the pump".  This ablation quantifies the
trade-off the paper only argues qualitatively: per-server net gain
(TEG output minus pump draw) across the flow range, at a fixed thermal
operating point.
"""

from repro.teg.module import default_server_module
from repro.thermal.cpu_model import CoolingSetting, CpuThermalModel
from repro.thermal.hydraulics import loop_pump_power_w, prototype_warm_loop

from bench_utils import print_table

FLOWS = (20.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0)
UTILISATION = 0.3
COLD_SOURCE_C = 20.0


INLET_C = 50.0  # fixed warm-water supply, as in the Fig. 7 measurement


def sweep():
    model = CpuThermalModel()
    module = default_server_module()
    loop = prototype_warm_loop()
    rows = []
    for flow in FLOWS:
        # Fix the thermal operating point (same inlet at every flow, the
        # Fig. 7 measurement protocol) so only the convective coupling
        # and the pump change with the flow rate.
        setting = CoolingSetting(flow_l_per_h=flow, inlet_temp_c=INLET_C)
        outlet = model.outlet_temp_c(UTILISATION, setting)
        generation = module.generation_w(outlet, COLD_SOURCE_C, flow)
        pump = loop_pump_power_w(loop, flow, INLET_C)
        rows.append([flow, outlet, generation, pump, generation - pump])
    return rows


def test_bench_ablation_flow_rate(benchmark):
    rows = benchmark(sweep)

    print_table(
        "Ablation E-AB1 — TEG gain vs pump cost across flow rates "
        f"(u = {UTILISATION}, inlet fixed at {INLET_C:.0f} C)",
        ["flow L/H", "T_warm_out C", "TEG W", "pump W", "net W"],
        rows)

    flows = [row[0] for row in rows]
    generation = {row[0]: row[2] for row in rows}
    net = {row[0]: row[4] for row in rows}

    # Gross generation keeps inching up with flow (Fig. 7's effect)...
    assert generation[300.0] > generation[50.0]
    # ...but the increment over the whole range is small...
    assert (generation[300.0] - generation[50.0]) / generation[50.0] < 0.25
    # ...and the pump eats it: the net optimum is NOT at maximum flow.
    best_net_flow = max(net, key=net.get)
    assert best_net_flow < max(flows)
    # At 300 L/H the pump draw exceeds the *entire* extra generation
    # gained since 50 L/H — the paper's "too little to be worth making".
    pump_300 = [row[3] for row in rows if row[0] == 300.0][0]
    assert pump_300 > generation[300.0] - generation[50.0]

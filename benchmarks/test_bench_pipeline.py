"""Batched-decision pipeline A/B: the vectorised decide path must win.

Runs the whole-trace kernel twice on the pinned 1,000-step x
200-server scenario — once with the batched decision path (the
default) and once with ``REPRO_KERNEL_BATCH=0`` forcing the scalar
per-plane loop — and compares the kernel's *decide phase* wall time
(``EngineMetrics.kernel.decide_s``).  Bit-identity between the two is
asserted before any timing is trusted: a fast-but-different batch path
can never look good.

``measure_pipeline_throughput`` is shared with
``benchmarks/check_engine_baseline.py --pipeline`` (and ``--all``),
which compares fresh numbers against the committed
``BENCH_pipeline.json`` baseline in CI and enforces
:data:`PIPELINE_DECIDE_SPEEDUP_FLOOR`.
"""

import os

import pytest

from repro.core.config import teg_original
from repro.core.engine import simulate
from repro.core.kernel import KERNEL_BATCH_ENV_VAR
from repro.workloads.synthetic import common_trace

from bench_utils import print_table

ROUNDS = 3

#: Same pinned scenario as the kernel baseline (ISSUE 3 / ISSUE 9).
PIPELINE_TRACE_KWARGS = dict(n_servers=200, duration_s=1000 * 300.0,
                             interval_s=300.0, seed=7)

#: Minimum batched-vs-scalar decide-phase speedup.  Measured ~4.5x on
#: a developer container; 3x leaves room for slow CI runners.
PIPELINE_DECIDE_SPEEDUP_FLOOR = 3.0


def measure_pipeline_throughput(rounds: int = ROUNDS) -> dict:
    """Batched vs scalar decide-phase throughput on the 1,000 x 200 trace.

    Returns a plain dict so the baseline checker can serialise it.
    The decide phase is isolated through the kernel's own
    :class:`~repro.core.kernel.KernelTimings` rather than end-to-end
    wall time, so evaluate/reduce noise cannot mask a decide
    regression.
    """
    trace = common_trace(**PIPELINE_TRACE_KWARGS)
    config = teg_original()
    variants = (("batched", None), ("scalar", "0"))
    decide_s = {}
    results = {}
    saved = os.environ.get(KERNEL_BATCH_ENV_VAR)
    try:
        for name, env in variants:
            if env is None:
                os.environ.pop(KERNEL_BATCH_ENV_VAR, None)
            else:
                os.environ[KERNEL_BATCH_ENV_VAR] = env
            best = None
            for _ in range(rounds):
                result = simulate(trace, config, mode="kernel")
                phase = result.metrics.kernel.decide_s
                best = phase if best is None else min(best, phase)
                results[name] = result
            decide_s[name] = best
    finally:
        if saved is None:
            os.environ.pop(KERNEL_BATCH_ENV_VAR, None)
        else:
            os.environ[KERNEL_BATCH_ENV_VAR] = saved
    assert results["batched"].records == results["scalar"].records
    assert results["batched"].violations == results["scalar"].violations
    return {
        "trace": dict(PIPELINE_TRACE_KWARGS),
        "n_steps": trace.n_steps,
        "scalar_decide_steps_per_s": round(
            trace.n_steps / decide_s["scalar"], 1),
        "batched_decide_steps_per_s": round(
            trace.n_steps / decide_s["batched"], 1),
        "decide_speedup": round(
            decide_s["scalar"] / decide_s["batched"], 2),
        "kernel_phases": results["batched"].metrics.kernel.summary(),
    }


@pytest.mark.benchmark
def test_bench_batched_decide_speedup(benchmark):
    report = benchmark.pedantic(measure_pipeline_throughput,
                                rounds=1, iterations=1)
    print_table(
        "Batched vs scalar decide — 1,000-step trace, 200 servers",
        ["path", "decide steps/s"],
        [
            ["scalar", report["scalar_decide_steps_per_s"]],
            ["batched", report["batched_decide_steps_per_s"]],
            ["speedup", report["decide_speedup"]],
        ])
    assert report["decide_speedup"] >= PIPELINE_DECIDE_SPEEDUP_FLOOR, (
        f"batched decide speedup {report['decide_speedup']:.2f}x below "
        f"the {PIPELINE_DECIDE_SPEEDUP_FLOOR:.0f}x floor")

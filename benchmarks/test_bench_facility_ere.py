"""E-AB7 — facility-level metrics: PUE and ERE with and without H2P.

Sec. II-C motivates H2P through ERE — the Green Grid metric that credits
reused energy.  This benchmark rolls a full LoadBalance run up into
facility energy flows and reports PUE vs ERE for each trace class.

Shape: the warm-water facility lands at a healthy PUE; crediting the TEG
output pushes ERE visibly below PUE on every trace (the direction the
paper argues, even though TEGs alone cannot drive ERE below 1).
"""

from repro.core.config import teg_loadbalance
from repro.core.facility import FacilityModel

from bench_utils import print_table


def run_all(system, traces):
    model = FacilityModel()
    reports = {}
    for name, trace in traces.items():
        result = system.evaluate(trace, teg_loadbalance())
        reports[name] = model.assess(result)
    return reports


def test_bench_facility_ere(benchmark, h2p_system, eval_traces):
    reports = benchmark.pedantic(
        run_all, args=(h2p_system, eval_traces), rounds=1, iterations=1)

    rows = []
    for name, report in reports.items():
        rows.append([
            name, report.it_kwh, report.cooling_kwh, report.reuse_kwh,
            report.pue, report.ere, report.ere_gain,
        ])
    print_table(
        "E-AB7 — facility energy flows under TEG_LoadBalance",
        ["trace", "IT kWh", "cooling kWh", "reuse kWh", "PUE", "ERE",
         "PUE-ERE"],
        rows)

    for name, report in reports.items():
        # Warm-water facility: no chiller load, modest PUE.
        assert 1.0 < report.pue < 1.6, name
        # The TEGs visibly improve the reuse metric.
        assert report.ere < report.pue, name
        assert report.ere_gain > 0.03, name
        # But TEGs alone cannot push ERE below 1 (Sec. VI-A's realism).
        assert report.ere > 1.0, name

"""E-F12/13 — Figs. 12-13: the lookup space and the A_max/A_avg selection.

Builds the 3-D measurement space (Fig. 12), slices it at T_safe = 62 C
for a high (U_max) and a low (U_avg) utilisation plane (Fig. 13), and
prints both regions.  Paper shape: the inlet temperatures admissible on
the U_avg plane are generally higher than those on the U_max plane, which
is exactly why workload balancing raises generation.
"""

import numpy as np

from repro.constants import CPU_SAFE_TEMP_C
from repro.control.lookup_space import LookupSpace

from bench_utils import print_table

U_MAX = 0.7
U_AVG = 0.25


def build_and_slice():
    space = LookupSpace()
    region_max = space.safe_region(U_MAX, CPU_SAFE_TEMP_C, 1.0)
    region_avg = space.safe_region(U_AVG, CPU_SAFE_TEMP_C, 1.0)
    return space, region_max, region_avg


def test_bench_fig13_region_selection(benchmark):
    space, region_max, region_avg = benchmark.pedantic(
        build_and_slice, rounds=3, iterations=1)

    print(f"\nFig. 12 — lookup space size: {space.n_points} points "
          f"({len(space.utilisation_grid)} utilisations x "
          f"{len(space.flow_grid)} flows x "
          f"{len(space.inlet_grid)} inlet temps)")

    def rows(region):
        return [[f"{p.flow_l_per_h:.0f}", p.inlet_temp_c, p.cpu_temp_c,
                 p.outlet_temp_c] for p in region]

    print_table(
        f"Fig. 13 — A_max region (u = {U_MAX}, T_safe = 62 +- 1 C)",
        ["flow L/H", "T_warm_in C", "T_CPU C", "T_warm_out C"],
        rows(region_max))
    print_table(
        f"Fig. 13 — A_avg region (u = {U_AVG}, T_safe = 62 +- 1 C)",
        ["flow L/H", "T_warm_in C", "T_CPU C", "T_warm_out C"],
        rows(region_avg))

    assert region_max and region_avg
    # All selected points sit inside the T_safe band.
    for point in region_max + region_avg:
        assert abs(point.cpu_temp_c - CPU_SAFE_TEMP_C) <= 1.0

    # Paper: "T_warm_in of the points in A_avg are generally higher than
    # those in A_max".
    mean_inlet_avg = np.mean([p.inlet_temp_c for p in region_avg])
    mean_inlet_max = np.mean([p.inlet_temp_c for p in region_max])
    assert mean_inlet_avg > mean_inlet_max + 2.0

"""E-AB4 — ablation: cold-source temperature sensitivity.

The paper fixes the TEG cold side at 20 °C (Qiandao-Lake-class natural
water, Sec. III-C).  This ablation sweeps the cold-source temperature —
a seasonal lake, a warmer sea source, a tropical deployment — and
re-evaluates generation, PRE and TCO.  Since the module's output is
quadratic in ΔT = T_warm_out − T_cold, each degree of cold-source
warming costs ~2/ΔT of relative power — about 6 %/°C at the paper's
operating point.
"""

import numpy as np

from repro.economics.tco import TcoModel
from repro.environment import ColdSourceProfile
from repro.teg.module import default_server_module

from bench_utils import print_table

WARM_OUT_C = 54.0
CPU_POWER_W = 29.0
COLD_SOURCES_C = (15.0, 17.5, 20.0, 22.5, 25.0, 27.5, 30.0)


def sweep():
    module = default_server_module()
    rows = []
    for cold in COLD_SOURCES_C:
        generation = module.generation_w(WARM_OUT_C, cold)
        rows.append([cold, WARM_OUT_C - cold, generation,
                     generation / CPU_POWER_W,
                     100.0 * TcoModel().breakdown(
                         generation).reduction_fraction])
    return rows


def test_bench_ablation_cold_source(benchmark):
    rows = benchmark(sweep)

    print_table(
        "Ablation E-AB4 — cold-source temperature sweep "
        f"(T_warm_out = {WARM_OUT_C} C)",
        ["T_cold C", "dT C", "gen W", "PRE", "TCO red. %"],
        rows)

    # Seasonal swing of the default lake profile, for context.
    profile = ColdSourceProfile()
    low, high = profile.range_c()
    module = default_server_module()
    summer = module.generation_w(WARM_OUT_C, high)
    winter = module.generation_w(WARM_OUT_C, low)
    print(f"Qiandao-class lake ({low:.0f}-{high:.0f} C): generation "
          f"{summer:.2f} W (summer) to {winter:.2f} W (winter), "
          f"{(winter - summer) / summer:+.1%} seasonal swing")

    generation = [row[2] for row in rows]
    # Colder source, more power — strictly.
    assert all(a > b for a, b in zip(generation, generation[1:]))
    # The paper's 20 C operating point produces the headline ~4+ W...
    at_20 = dict((row[0], row[2]) for row in rows)[20.0]
    assert 3.5 < at_20 < 5.5
    # ...and a tropical 30 C source costs roughly half the benefit.
    at_30 = dict((row[0], row[2]) for row in rows)[30.0]
    assert at_30 < 0.75 * at_20
    # Sensitivity near the operating point: the quadratic law gives
    # roughly 2/dT of relative power per degree — ~6 %/C at dT ~ 34 C.
    at_25 = dict((row[0], row[2]) for row in rows)[25.0]
    per_degree = (at_20 - at_25) / at_20 / 5.0
    assert 0.03 < per_degree < 0.08

"""E-AB9 — seasonal profile of an H2P deployment.

Extends the paper's single-day, fixed-20 °C evaluation to a full year
with a Qiandao-Lake-class cold source (15-20 °C, Sec. III-C) and a
subtropical wet-bulb climate.  Prints the monthly generation/PRE/PUE
profile and the annual roll-up.

Shape: generation is anti-correlated with the cold-source temperature —
the lake's seasonal swing moves the per-CPU output by ~25 %; winter is
the best harvesting season, late summer the worst.
"""

import numpy as np

from repro.core.seasonal import SeasonalStudy, annual_summary
from repro.workloads.synthetic import common_trace

from bench_utils import print_table


def run_year():
    trace = common_trace(n_servers=80, duration_s=12 * 3600.0, seed=17)
    outcomes = SeasonalStudy(trace=trace).run()
    return outcomes, annual_summary(outcomes)


def test_bench_seasonal_profile(benchmark):
    outcomes, summary = benchmark.pedantic(run_year, rounds=1,
                                           iterations=1)

    print_table(
        "E-AB9 — month-by-month H2P profile (TEG_LoadBalance)",
        ["month", "cold src C", "wet bulb C", "gen W/CPU", "PRE",
         "PUE"],
        [[outcome.month, outcome.cold_source_c, outcome.wet_bulb_c,
          outcome.generation_w, outcome.result.average_pre,
          outcome.facility.pue]
         for outcome in outcomes])
    print(f"annual: mean {summary['generation_mean_w']:.2f} W/CPU, "
          f"swing {summary['seasonal_swing']:.0%} "
          f"(best {summary['best_month']}, "
          f"worst {summary['worst_month']})")

    cold = np.array([outcome.cold_source_c for outcome in outcomes])
    generation = np.array([outcome.generation_w
                           for outcome in outcomes])
    # Generation anti-correlates with the cold-source temperature.
    assert np.corrcoef(cold, generation)[0, 1] < -0.9
    # The lake's 5 C swing moves output by a noticeable fraction.
    assert 0.10 < summary["seasonal_swing"] < 0.45
    # Winter beats summer.
    by_month = {outcome.month: outcome.generation_w
                for outcome in outcomes}
    assert by_month["Jan"] > by_month["Aug"]

"""Reproduce every registered paper experiment and write RESULTS.md.

Run:
    python examples/reproduce_all.py                # writes RESULTS.md
    python examples/reproduce_all.py --out /tmp/r.md --skip-slow
    python examples/reproduce_all.py --workers 4    # parallel engine runs

Walks the experiment registry (the same E-F*/E-T1/E-VA ids DESIGN.md
indexes), runs each at registry scale, and renders one markdown report
with every metric — the artefact to diff against EXPERIMENTS.md after a
recalibration.
"""

import argparse
import os
import time
from pathlib import Path

from repro.core.engine import WORKERS_ENV_VAR
from repro.experiments import list_experiments, run_experiment

SLOW_IDS = {"E-F14", "E-F15"}


def main() -> None:
    parser = argparse.ArgumentParser(
        description="run every registered experiment, write a report")
    parser.add_argument("--out", default="RESULTS.md")
    parser.add_argument("--skip-slow", action="store_true",
                        help="skip the cluster-scale experiments "
                             f"({', '.join(sorted(SLOW_IDS))})")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel workers for the engine-backed "
                             "experiments (sets " + WORKERS_ENV_VAR + ")")
    args = parser.parse_args()
    if args.workers is not None:
        os.environ[WORKERS_ENV_VAR] = str(args.workers)

    lines = ["# RESULTS — registry run", ""]
    for experiment_id, title in list_experiments():
        if args.skip_slow and experiment_id in SLOW_IDS:
            print(f"skipping {experiment_id} ({title})")
            lines += [f"## {experiment_id} — {title}", "",
                      "_skipped (--skip-slow)_", ""]
            continue
        started = time.time()
        outcome = run_experiment(experiment_id)
        elapsed = time.time() - started
        print(f"{experiment_id:<7} {title:<40} {elapsed:6.1f}s")
        lines += [f"## {experiment_id} — {outcome.title}", ""]
        for key, value in outcome.metrics.items():
            if isinstance(value, float):
                lines.append(f"* `{key}` = {value:.5g}")
            else:
                lines.append(f"* `{key}` = {value}")
        lines.append("")

    out_path = Path(args.out)
    out_path.write_text("\n".join(lines))
    print(f"\nreport written to {out_path}")


if __name__ == "__main__":
    main()

"""Deployment study: should *your* datacenter adopt H2P?

Run:
    python examples/deployment_study.py
    python examples/deployment_study.py --climate singapore --servers 500

A site-assessment walkthrough combining the library's analysis layers:

1. seasonal profile — what the local lake/sea cold source does to the
   harvest over a year;
2. reuse-route comparison — H2P vs district heating vs CCHP in this
   climate (the Sec. II-C argument, priced);
3. uncertainty — 90 % confidence intervals on the headline numbers;
4. hot-spot safety — confirming the warm set-point survives load spikes
   when the TEC hybrid cooling is present.
"""

import argparse

from repro import trace_by_name
from repro.cooling.hotspot import HotSpotScenario
from repro.core.seasonal import SeasonalStudy, annual_summary
from repro.environment import CLIMATES, ColdSourceProfile
from repro.heatreuse.comparison import ReuseComparison
from repro.reporting import format_table
from repro.uncertainty import MonteCarloStudy


def main() -> None:
    parser = argparse.ArgumentParser(
        description="H2P site-assessment walkthrough")
    parser.add_argument("--climate", default="hangzhou",
                        choices=sorted(CLIMATES))
    parser.add_argument("--servers", type=int, default=200)
    parser.add_argument("--draws", type=int, default=100)
    args = parser.parse_args()

    climate = CLIMATES[args.climate]
    trace = trace_by_name("common", n_servers=args.servers)

    # ------------------------------------------------------------------
    # 1. Seasonal harvest profile.
    # ------------------------------------------------------------------
    print(f"== 1. seasonal profile ({args.climate}) "
          "==========================")
    study = SeasonalStudy(trace=trace, wet_bulb=climate,
                          cold_source=ColdSourceProfile())
    outcomes = study.run()
    print(format_table(
        ["month", "cold C", "wet bulb C", "gen W/CPU", "PRE"],
        [[outcome.month, outcome.cold_source_c, outcome.wet_bulb_c,
          outcome.generation_w, outcome.result.average_pre]
         for outcome in outcomes[::2]]))
    summary = annual_summary(outcomes)
    print(f"annual mean {summary['generation_mean_w']:.2f} W/CPU, "
          f"seasonal swing {summary['seasonal_swing']:.0%} "
          f"(best {summary['best_month']}, worst "
          f"{summary['worst_month']})\n")

    # ------------------------------------------------------------------
    # 2. Reuse-route comparison.
    # ------------------------------------------------------------------
    print("== 2. reuse routes (Sec. II-C) ============================")
    comparison = ReuseComparison(
        n_servers=args.servers, climate=climate,
        teg_generation_per_server_w=summary["generation_mean_w"])
    for option in comparison.all_options():
        print(f"  {option.name:<22} ${option.annual_value_usd:>9,.0f}"
              f"/yr  ({option.notes})")
    print()

    # ------------------------------------------------------------------
    # 3. Uncertainty on the headline numbers.
    # ------------------------------------------------------------------
    print("== 3. uncertainty (Monte Carlo) ===========================")
    mc = MonteCarloStudy().run(trace, n_draws=args.draws)
    intervals = mc.summary(confidence=0.90)
    for metric, label, fmt in (
            ("generation_w", "generation (W/CPU)", "{:.2f}"),
            ("pre", "PRE", "{:.1%}"),
            ("tco_reduction", "TCO reduction", "{:.2%}")):
        entry = intervals[metric]
        print(f"  {label:<20} {fmt.format(entry['median'])}  "
              f"[{fmt.format(entry['low'])}, "
              f"{fmt.format(entry['high'])}] (90 %)")
    print()

    # ------------------------------------------------------------------
    # 4. Hot-spot safety at the warm set-point.
    # ------------------------------------------------------------------
    print("== 4. hot-spot safety =====================================")
    episodes = HotSpotScenario().compare()
    for strategy, outcome in episodes.items():
        verdict = "VIOLATION" if outcome.violation else "safe"
        print(f"  {strategy:<8} peak {outcome.peak_cpu_temp_c:5.1f} C "
              f"[{verdict}]")
    print("\nverdict: adopt H2P with TEC hybrid cooling; expect "
          f"~{summary['generation_mean_w']:.1f} W/CPU averaged over "
          "the year in this climate.")


if __name__ == "__main__":
    main()

"""Full trace-driven datacenter simulation (the Fig. 14/15 experiment).

Run:
    python examples/datacenter_sim.py                       # all traces
    python examples/datacenter_sim.py --trace drastic       # one trace
    python examples/datacenter_sim.py --servers 1000        # paper scale
    python examples/datacenter_sim.py --circulation-size 50

Replays the paper's three workload classes (drastic / irregular /
common) under TEG_Original and TEG_LoadBalance, prints the generation
and PRE summary against the paper's numbers, and an hour-by-hour strip
chart of utilisation vs generation for the optimised scheme.
"""

import argparse

from repro import H2PSystem, teg_loadbalance, teg_original, trace_by_name

PAPER = {
    "drastic": (3.725, 4.349),
    "irregular": (3.772, 4.203),
    "common": (3.586, 3.979),
}


def strip_chart(result, width: int = 60) -> None:
    """Print a crude two-row time chart of utilisation vs generation."""
    utils = result.utilisation_series
    gens = result.generation_series_w
    step = max(1, len(utils) // width)
    utils = utils[::step]
    gens = gens[::step]

    def row(series, lo, hi, label):
        glyphs = " .:-=+*#%@"
        span = (hi - lo) or 1.0
        cells = "".join(
            glyphs[min(len(glyphs) - 1,
                       int((value - lo) / span * (len(glyphs) - 1)))]
            for value in series)
        print(f"  {label:<12}|{cells}|")

    row(utils, float(utils.min()), float(utils.max()), "utilisation")
    row(gens, float(gens.min()), float(gens.max()), "generation")
    print(f"  {'':<12} time -> ({result.times_s[-1] / 3600.0:.0f} h, "
          f"one column per {step * result.interval_s / 60.0:.0f} min)")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="H2P trace-driven evaluation (paper Fig. 14/15)")
    parser.add_argument("--trace", choices=[*PAPER, "all"], default="all",
                        help="workload class to replay")
    parser.add_argument("--servers", type=int, default=400,
                        help="cluster size (paper: 1000+)")
    parser.add_argument("--circulation-size", type=int, default=20,
                        help="servers per water circulation")
    args = parser.parse_args()

    names = list(PAPER) if args.trace == "all" else [args.trace]
    system = H2PSystem()
    overrides = dict(circulation_size=args.circulation_size)

    print(f"{'trace':<10} {'scheme':<16} {'avg W':>7} {'paper':>7} "
          f"{'peak W':>7} {'PRE':>7} {'violations':>10}")
    totals = {"orig": [], "bal": []}
    for name in names:
        trace = trace_by_name(name, n_servers=args.servers)
        comparison = system.compare(trace, teg_original(**overrides),
                                    teg_loadbalance(**overrides))
        for label, result, paper in (
                ("TEG_Original", comparison.baseline, PAPER[name][0]),
                ("TEG_LoadBalance", comparison.optimised, PAPER[name][1])):
            print(f"{name:<10} {label:<16} "
                  f"{result.average_generation_w:>7.3f} {paper:>7.3f} "
                  f"{result.peak_generation_w:>7.3f} "
                  f"{result.average_pre:>6.1%} "
                  f"{result.total_safety_violations:>10d}")
        totals["orig"].append(comparison.baseline.average_generation_w)
        totals["bal"].append(comparison.optimised.average_generation_w)

        print(f"\n  {name}: utilisation vs generation "
              f"(TEG_LoadBalance) — note the anti-correlation")
        strip_chart(comparison.optimised)
        print()

    if len(names) > 1:
        orig = sum(totals["orig"]) / len(totals["orig"])
        bal = sum(totals["bal"]) / len(totals["bal"])
        print(f"overall: {orig:.3f} W -> {bal:.3f} W "
              f"(+{(bal - orig) / orig:.1%}; paper: "
              f"3.694 W -> 4.177 W, +13.08 %)")


if __name__ == "__main__":
    main()

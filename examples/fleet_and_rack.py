"""Fleet heterogeneity and rack-level power integration.

Run:
    python examples/fleet_and_rack.py
    python examples/fleet_and_rack.py --servers 240

Exercises two extension layers on top of the core reproduction:

1. a mixed CPU fleet (the prototype Xeon, a high-TDP Xeon, an
   EPYC-class part) evaluated slice by slice — Sec. VII's claim that
   H2P "suits all types of CPUs";
2. a 20-server rack's DC power chain: TEG modules through a DC-DC
   converter and hybrid battery/super-capacitor buffer carrying the
   rack's LED lighting and a hot-spot TEC burst (Secs. VI-B/C/D);
3. a predictive-control teaser: what an EWMA forecast changes on a
   drastic trace.
"""

import argparse

import numpy as np

from repro import trace_by_name
from repro.control.cooling_policy import AnalyticPolicy
from repro.control.predictive import PredictivePolicy
from repro.fleet import FleetMix
from repro.power import RackPowerSystem
from repro.reporting import format_table
from repro.workloads.forecast import EwmaForecaster


def main() -> None:
    parser = argparse.ArgumentParser(
        description="fleet heterogeneity + rack DC bus walkthrough")
    parser.add_argument("--servers", type=int, default=120)
    args = parser.parse_args()

    trace = trace_by_name("common", n_servers=args.servers)

    # ------------------------------------------------------------------
    # 1. Mixed fleet.
    # ------------------------------------------------------------------
    print("== 1. heterogeneous fleet =================================")
    mix = FleetMix()
    outcomes = mix.run(trace)
    print(format_table(
        ["CPU model", "servers", "T_safe C", "gen W/CPU", "violations"],
        [[o.spec.name, o.n_servers, o.spec.safe_temp_c, o.generation_w,
          o.result.total_safety_violations] for o in outcomes]))
    summary = FleetMix.aggregate(outcomes)
    print(f"fleet: {summary['fleet_generation_w']:.2f} W/CPU, "
          f"PRE {summary['fleet_pre']:.1%}\n")

    # ------------------------------------------------------------------
    # 2. Rack power chain with a TEC burst.
    # ------------------------------------------------------------------
    print("== 2. rack DC bus =========================================")
    prototype = outcomes[0].result
    tec = np.zeros(len(prototype.records))
    midpoint = len(tec) // 2
    tec[midpoint:midpoint + 6] = 80.0
    rack = RackPowerSystem(n_servers=20)
    telemetry = rack.simulate(prototype.generation_series_w,
                              trace.interval_s, tec)
    print(f"harvested (rack)   : {telemetry.harvested_w.mean():.1f} W "
          f"mean")
    print(f"ancillary load     : {telemetry.load_w.mean():.1f} W mean "
          f"(lighting + TEC burst)")
    print(f"self-powered       : {telemetry.self_powered_fraction:.1%}")
    print(f"exported to servers: {telemetry.exported_kwh:.2f} kWh "
          f"over the run")
    print(f"conversion chain   : "
          f"{telemetry.conversion_efficiency:.0%} efficient\n")

    # ------------------------------------------------------------------
    # 3. Predictive control on a fast-moving trace.
    # ------------------------------------------------------------------
    print("== 3. predictive control teaser ===========================")
    drastic = trace_by_name("drastic", n_servers=20)
    matrix = drastic.utilisation
    reactive = AnalyticPolicy()
    predictive = PredictivePolicy(
        forecaster=EwmaForecaster(alpha=0.7, margin_sigmas=2.0))
    stale_excursions = {"reactive": 0, "predictive": 0}
    from repro.constants import CPU_SAFE_TEMP_C
    from repro.thermal.cpu_model import CpuThermalModel

    model = CpuThermalModel()
    for step in range(matrix.shape[0] - 1):
        for name, policy in (("reactive", reactive),
                             ("predictive", predictive)):
            decision = policy.decide(matrix[step])
            next_temp = model.cpu_temp_c(float(matrix[step + 1].max()),
                                         decision.setting)
            if next_temp > CPU_SAFE_TEMP_C + 1.0:
                stale_excursions[name] += 1
    print(f"beyond-band excursions against next-interval load: "
          f"reactive {stale_excursions['reactive']}, "
          f"predictive {stale_excursions['predictive']} "
          f"(out of {matrix.shape[0] - 1} intervals)")


if __name__ == "__main__":
    main()

"""Future materials, storage and applications (Sec. VI).

Run:
    python examples/materials_future.py

Three studies from the paper's discussion section:

1. Sec. VI-D — what happens to H2P's economics when Bi2Te3 (ZT ~ 1) is
   replaced by nanostructured bulk or ZT ~ 6 Heusler thin films;
2. Sec. VI-B — smoothing the diurnal TEG output with a hybrid
   battery + super-capacitor buffer to carry a constant load;
3. Sec. VI-C2 — how much LED lighting one server's module can power.
"""

import numpy as np

from repro import H2PSystem, common_trace, teg_loadbalance
from repro.applications.lighting import (
    HIGH_POWER_LED,
    LedLightingPlan,
    ORDINARY_LED,
)
from repro.economics.breakeven import BreakEvenAnalysis
from repro.economics.tco import TcoModel
from repro.storage.battery import Battery
from repro.storage.hybrid import HybridEnergyBuffer
from repro.storage.supercap import SuperCapacitor
from repro.teg.device import PAPER_TEG
from repro.teg.materials import MATERIALS
from repro.teg.module import TegModule


def material_roadmap() -> None:
    print("-- Sec. VI-D: thermoelectric material roadmap ---------------")
    print(f"{'material':<22} {'ZT@54C':>7} {'W/server':>9} "
          f"{'TCO red.':>9} {'break-even':>11}")
    for name, material in MATERIALS.items():
        device = PAPER_TEG.with_material(material)
        module = TegModule(device=device)
        generation = module.generation_w(54.0, 20.0)
        reduction = TcoModel().breakdown(generation).reduction_fraction
        days = BreakEvenAnalysis().break_even_days(generation)
        print(f"{name:<22} {material.zt(54.0):>7.2f} {generation:>9.2f} "
              f"{reduction:>9.2%} {days:>9.0f} d")
    print()


def storage_smoothing() -> None:
    print("-- Sec. VI-B: hybrid buffer riding through the daily peak ---")
    # Simulate one day of LoadBalance generation on a small cluster, then
    # ask a per-server buffer to carry a constant 4 W load through it.
    trace = common_trace(n_servers=100, seed=21)
    result = H2PSystem().evaluate(trace, teg_loadbalance())
    generation = result.generation_series_w

    buffer = HybridEnergyBuffer(
        battery=Battery(capacity_wh=8.0, soc=0.6),
        supercap=SuperCapacitor(capacity_wh=1.0, soc=0.5))
    demand_w = 4.0
    telemetry = buffer.smooth(generation, demand_w, trace.interval_s)
    print(f"generation range : {generation.min():.2f} - "
          f"{generation.max():.2f} W (mean {generation.mean():.2f} W)")
    print(f"constant demand  : {demand_w:.1f} W")
    print(f"coverage         : {telemetry.coverage:.1%} of demanded "
          f"energy served")
    print(f"curtailment      : {telemetry.curtailment_fraction:.1%} of "
          f"generation wasted")
    print(f"battery SoC range: {telemetry.battery_soc.min():.2f} - "
          f"{telemetry.battery_soc.max():.2f}")
    print()
    return float(generation.mean())


def led_sizing(mean_generation_w: float) -> None:
    print("-- Sec. VI-C2: TEGs for lighting ----------------------------")
    for label, led in (("ordinary 0.05 W LEDs", ORDINARY_LED),
                       ("high-power 1 W LEDs", HIGH_POWER_LED)):
        plan = LedLightingPlan(led=led)
        count = plan.leds_supported(mean_generation_w)
        saved = plan.energy_saved_kwh_per_month(mean_generation_w)
        print(f"{label:<22}: {count:>4d} lamps, "
              f"{plan.luminous_flux_lm(mean_generation_w):>7.0f} lm, "
              f"{saved:.2f} kWh/month displaced")


def main() -> None:
    np.set_printoptions(precision=3)
    material_roadmap()
    mean_generation = storage_smoothing()
    led_sizing(mean_generation)


if __name__ == "__main__":
    main()

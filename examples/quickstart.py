"""Quickstart: evaluate H2P on one server and one small cluster.

Run:
    python examples/quickstart.py

Walks through the library's core workflow in four steps: a single-server
operating point, a safety check, a small trace-driven comparison of the
paper's two schemes, and the resulting TCO.
"""

from repro import (
    CoolingSetting,
    H2PSystem,
    common_trace,
    teg_loadbalance,
    teg_original,
)


def main() -> None:
    system = H2PSystem()

    # ------------------------------------------------------------------
    # 1. One server, one operating point.
    # ------------------------------------------------------------------
    setting = CoolingSetting(flow_l_per_h=150.0, inlet_temp_c=52.0)
    utilisation = 0.25
    generation = system.server_generation_w(utilisation, setting)
    pre = system.server_pre(utilisation, setting)
    print("-- single server -------------------------------------------")
    print(f"cooling setting : {setting.flow_l_per_h:.0f} L/H, "
          f"{setting.inlet_temp_c:.1f} C inlet")
    print(f"utilisation     : {utilisation:.0%}")
    print(f"TEG generation  : {generation:.2f} W "
          f"(12x SP 1848-27145 at the CPU outlet)")
    print(f"PRE             : {pre:.1%}")

    # ------------------------------------------------------------------
    # 2. Safety: warm water is fine, hot water at load is not.
    # ------------------------------------------------------------------
    print("\n-- safety check --------------------------------------------")
    for inlet in (45.0, 50.0, 55.0):
        candidate = CoolingSetting(flow_l_per_h=50.0, inlet_temp_c=inlet)
        verdict = "SAFE" if system.is_safe(1.0, candidate) else "UNSAFE"
        temp = system.cpu_model.cpu_temp_c(1.0, candidate)
        print(f"inlet {inlet:.0f} C at 100 % load -> CPU {temp:.1f} C "
              f"[{verdict}] (limit 78.9 C)")

    # ------------------------------------------------------------------
    # 3. Trace-driven comparison (small cluster for speed).
    # ------------------------------------------------------------------
    print("\n-- scheme comparison (common trace, 100 servers) ----------")
    trace = common_trace(n_servers=100, duration_s=6 * 3600.0, seed=7)
    comparison = system.compare(trace, teg_original(), teg_loadbalance())
    base = comparison.baseline
    balanced = comparison.optimised
    print(f"TEG_Original    : {base.average_generation_w:.2f} W/CPU avg, "
          f"PRE {base.average_pre:.1%}")
    print(f"TEG_LoadBalance : {balanced.average_generation_w:.2f} W/CPU "
          f"avg, PRE {balanced.average_pre:.1%}")
    print(f"improvement     : {comparison.generation_improvement:.1%} "
          f"(paper: ~13 %)")

    # ------------------------------------------------------------------
    # 4. Economics.
    # ------------------------------------------------------------------
    print("\n-- economics -----------------------------------------------")
    breakdown = system.tco(balanced.average_generation_w)
    print(f"TCO without H2P : ${breakdown.tco_no_teg_usd:.2f}/server/month")
    print(f"TCO with H2P    : ${breakdown.tco_h2p_usd:.2f}/server/month")
    print(f"reduction       : {breakdown.reduction_fraction:.2%} "
          f"(paper: up to 0.57 %)")
    print(f"100k-CPU fleet  : "
          f"${breakdown.annual_savings_usd(100_000):,.0f} saved per year")


if __name__ == "__main__":
    main()

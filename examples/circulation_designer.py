"""Water-circulation design study (Sec. V-A).

Run:
    python examples/circulation_designer.py
    python examples/circulation_designer.py --servers 5000 --sigma 8

How many servers should share one chiller loop?  This script sweeps the
circulation size for a cluster, prints the Eq. 12 cost curve, and shows
how the optimum moves with workload volatility and chiller price — the
design guidance the paper derives from order statistics.
"""

import argparse

from repro.cooling.chiller import Chiller
from repro.cooling.circulation_design import CirculationDesignProblem


def run_sweep(problem: CirculationDesignProblem, label: str) -> None:
    result = problem.optimise(
        candidates=[1, 2, 5, 10, 20, 50, 100, 200, 500,
                    problem.total_servers])
    print(f"\n-- {label} "
          + "-" * max(0, 56 - len(label)))
    print(f"{'n/circ':>8} {'E[dT] C':>9} {'energy $':>12} "
          f"{'hardware $':>12} {'total $':>12}")
    for i, n in enumerate(result.candidate_n):
        marker = "  <- optimum" if int(n) == result.best_n else ""
        print(f"{int(n):>8} {result.expected_inlet_reduction_c[i]:>9.2f} "
              f"{result.energy_costs_usd[i]:>12,.0f} "
              f"{result.hardware_costs_usd[i]:>12,.0f} "
              f"{result.total_costs_usd[i]:>12,.0f}{marker}")
    print(f"best: {result.best_n} servers/circulation, "
          f"${result.best_cost_usd:,.0f}/year")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Sec. V-A circulation-size optimisation")
    parser.add_argument("--servers", type=int, default=1000)
    parser.add_argument("--mu", type=float, default=55.0,
                        help="mean CPU temperature under the load mix, C")
    parser.add_argument("--sigma", type=float, default=6.0,
                        help="CPU temperature standard deviation, C")
    parser.add_argument("--chiller-capex", type=float, default=20000.0)
    args = parser.parse_args()

    base = CirculationDesignProblem(
        total_servers=args.servers,
        temp_mu_c=args.mu,
        temp_sigma_c=args.sigma,
        chiller=Chiller(capacity_kw=500, capex_usd=args.chiller_capex))
    run_sweep(base, f"baseline (mu={args.mu} C, sigma={args.sigma} C, "
                    f"chiller ${args.chiller_capex:,.0f})")

    # Sensitivity 1: volatile workloads (hot outliers) want small loops.
    volatile = CirculationDesignProblem(
        total_servers=args.servers, temp_mu_c=args.mu,
        temp_sigma_c=args.sigma * 2.0,
        chiller=Chiller(capacity_kw=500, capex_usd=args.chiller_capex))
    run_sweep(volatile, "2x temperature volatility")

    # Sensitivity 2: cheap chillers also want small loops.
    cheap = CirculationDesignProblem(
        total_servers=args.servers, temp_mu_c=args.mu,
        temp_sigma_c=args.sigma,
        chiller=Chiller(capacity_kw=500,
                        capex_usd=args.chiller_capex / 10.0))
    run_sweep(cheap, "10x cheaper chillers")


if __name__ == "__main__":
    main()

"""Public-API surface tests.

Guard the package's importable surface: every ``__all__`` entry must
resolve, every public module must carry a docstring, and the top-level
namespace must keep exposing the names the README and examples rely on.
"""

import importlib
import pkgutil

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro",
    "repro.thermal",
    "repro.teg",
    "repro.cooling",
    "repro.workloads",
    "repro.control",
    "repro.core",
    "repro.economics",
    "repro.storage",
    "repro.applications",
    "repro.heatreuse",
]


def iter_all_modules():
    for package_name in PUBLIC_PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(
                    f"{package_name}.{info.name}")


class TestAllEntriesResolve:
    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_all_exports_exist(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), package_name
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package_name}.__all__ exports missing name {name!r}")


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [module.__name__
                        for module in iter_all_modules()
                        if not (module.__doc__ or "").strip()]
        assert undocumented == []

    def test_every_public_class_documented(self):
        missing = []
        for module in iter_all_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if isinstance(obj, type) and not (obj.__doc__
                                                  or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []


class TestTopLevelSurface:
    def test_readme_names_present(self):
        for name in ("H2PSystem", "CoolingSetting", "common_trace",
                     "teg_original", "teg_loadbalance", "TcoModel",
                     "BreakEvenAnalysis", "WorkloadTrace",
                     "DatacenterSimulator", "PAPER_TEG"):
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_exceptions_form_a_hierarchy(self):
        for name in ("ConfigurationError", "PhysicalRangeError",
                     "CoolingFailureError", "TraceFormatError"):
            assert issubclass(getattr(repro, name), repro.ReproError)

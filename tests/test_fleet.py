"""Heterogeneous fleet tests."""

import pytest

from repro.core.config import teg_loadbalance
from repro.errors import ConfigurationError, PhysicalRangeError
from repro.fleet import (
    CPU_SPECS,
    CpuSpec,
    EPYC_CLASS,
    FleetMix,
    XEON_D_CLASS,
    XEON_E5_2650_V3,
    XEON_E5_2699_V4,
)
from repro.thermal.cpu_model import CoolingSetting
from repro.workloads.synthetic import common_trace


@pytest.fixture(scope="module")
def trace():
    return common_trace(n_servers=90, duration_s=6 * 3600.0, seed=13)


class TestCpuSpec:
    def test_registry_contains_prototype(self):
        assert "Xeon E5-2650 v3" in CPU_SPECS
        assert CPU_SPECS["Xeon E5-2650 v3"].power_scale == 1.0

    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            CpuSpec(name="bad", power_scale=0.0)
        with pytest.raises(PhysicalRangeError):
            CpuSpec(name="bad", max_operating_temp_c=200.0)
        with pytest.raises(PhysicalRangeError):
            CpuSpec(name="bad", safe_fraction=0.3)

    def test_safe_temp_matches_paper_fraction(self):
        # ~80 % of 78.9 C is the paper's T_safe neighbourhood (62 C).
        assert XEON_E5_2650_V3.safe_temp_c == pytest.approx(62.3, abs=0.1)

    def test_thermal_model_carries_power_scale(self):
        model = EPYC_CLASS.thermal_model()
        assert model.cpu_power_w(0.5) == pytest.approx(
            1.9 * XEON_E5_2650_V3.thermal_model().cpu_power_w(0.5))

    def test_hot_part_runs_hotter(self):
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=45.0)
        base = XEON_E5_2650_V3.thermal_model().cpu_temp_c(0.8, setting)
        hot = EPYC_CLASS.thermal_model().cpu_temp_c(0.8, setting)
        assert hot > base

    def test_low_power_part_runs_cooler(self):
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=45.0)
        base = XEON_E5_2650_V3.thermal_model().cpu_temp_c(0.8, setting)
        small = XEON_D_CLASS.thermal_model().cpu_temp_c(0.8, setting)
        assert small < base


class TestFleetMix:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            FleetMix(shares={XEON_E5_2650_V3: 0.5})
        with pytest.raises(ConfigurationError):
            FleetMix(shares={})
        with pytest.raises(ConfigurationError):
            FleetMix(shares={XEON_E5_2650_V3: 1.5,
                             EPYC_CLASS: -0.5})

    def test_run_partitions_all_servers(self, trace):
        outcomes = FleetMix().run(trace)
        assert sum(outcome.n_servers for outcome in outcomes) == \
            trace.n_servers

    def test_each_slice_uses_its_safe_temp(self, trace):
        outcomes = FleetMix().run(trace)
        for outcome in outcomes:
            # No slice exceeds its own limit.
            assert outcome.result.total_safety_violations == 0

    def test_all_specs_generate(self, trace):
        # The Sec. VII claim: every CPU type harvests.
        outcomes = FleetMix().run(trace)
        for outcome in outcomes:
            assert outcome.generation_w > 2.0, outcome.spec.name

    def test_aggregate_weighting(self, trace):
        outcomes = FleetMix().run(trace)
        summary = FleetMix.aggregate(outcomes)
        generations = [outcome.generation_w for outcome in outcomes]
        assert min(generations) <= summary["fleet_generation_w"] \
            <= max(generations)
        assert 0.0 < summary["fleet_pre"] < 0.25
        assert len(summary["per_spec"]) == len(outcomes)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetMix.aggregate([])

    def test_single_spec_mix(self, trace):
        mix = FleetMix(shares={XEON_E5_2650_V3: 1.0},
                       config=teg_loadbalance())
        outcomes = mix.run(trace)
        assert len(outcomes) == 1
        assert outcomes[0].n_servers == trace.n_servers

    def test_too_narrow_trace_rejected(self):
        tiny = common_trace(n_servers=2, duration_s=3600.0, seed=2)
        mix = FleetMix(shares={XEON_E5_2650_V3: 0.4,
                               XEON_E5_2699_V4: 0.3,
                               EPYC_CLASS: 0.3})
        # 2 servers cannot be split three ways.
        with pytest.raises(ConfigurationError):
            mix.run(tiny)

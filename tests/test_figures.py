"""Figure-data API tests."""

import numpy as np
import pytest

from repro import figures
from repro.errors import PhysicalRangeError


class TestFig3:
    def test_series_aligned(self):
        data = figures.fig3_data(output_dt_s=30.0)
        n = len(data["times_s"])
        assert len(data["cpu0_temp_c"]) == n
        assert len(data["cpu1_temp_c"]) == n
        assert len(data["teg_voltage_v"]) == n

    def test_sandwich_runs_hotter(self):
        data = figures.fig3_data(output_dt_s=30.0)
        assert data["cpu0_temp_c"].max() > data["cpu1_temp_c"].max() + 20


class TestFig7:
    def test_default_flows(self):
        data = figures.fig7_data()
        assert set(data["voltage_v"]) == {50.0, 100.0, 200.0, 300.0}

    def test_reference_flow_matches_eq3(self):
        data = figures.fig7_data(deltas_c=[20.0])
        assert data["voltage_v"][200.0][0] == pytest.approx(
            6 * (0.0448 * 20.0 - 0.0051))


class TestFig8:
    def test_linear_scaling(self):
        data = figures.fig8_data(deltas_c=[10.0, 20.0])
        assert np.allclose(data["voltage_v"][12],
                           12 * data["voltage_v"][1])
        assert np.allclose(data["power_w"][6], 6 * data["power_w"][1])


class TestFig9:
    def test_structure(self):
        data = figures.fig9_data(utilisations=[0.0, 0.5, 1.0])
        assert set(data["by_flow"]) == {20.0, 100.0, 300.0}
        for series in data["by_flow"].values():
            assert series.shape == (3,)

    def test_band(self):
        data = figures.fig9_data()
        for series in data["by_inlet"].values():
            assert series.min() > 0.7
            assert series.max() < 3.7


class TestFig10And11:
    def test_fig10_frequency_plateau(self):
        data = figures.fig10_data()
        assert data["frequency_ghz"][-1] == pytest.approx(2.5, abs=0.05)

    def test_fig11_slopes_in_band(self):
        data = figures.fig11_data()
        for slope in data["slopes"].values():
            assert 1.0 < slope <= 1.3


class TestFig13:
    def test_regions_nonempty_and_ordered(self):
        data = figures.fig13_data()
        assert len(data["a_max"]["inlet_temp_c"]) > 0
        assert len(data["a_avg"]["inlet_temp_c"]) > 0
        assert data["a_avg"]["inlet_temp_c"].mean() > \
            data["a_max"]["inlet_temp_c"].mean()

    def test_invalid_utilisations_rejected(self):
        with pytest.raises(PhysicalRangeError):
            figures.fig13_data(u_max=0.2, u_avg=0.5)


class TestFig14And15:
    def test_small_instance(self):
        data = figures.fig14_15_data(trace_names=("common",),
                                     n_servers=40)
        entry = data["common"]
        assert entry["loadbalance_w"].mean() > entry["original_w"].mean()
        assert 0.08 < entry["loadbalance_pre"] < 0.22
        assert entry["times_s"].shape == entry["original_w"].shape

"""Environmental profile tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.environment import (
    CLIMATES,
    ColdSourceProfile,
    WetBulbProfile,
)
from repro.errors import PhysicalRangeError

DAY = 86_400.0


class TestWetBulbProfile:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            WetBulbProfile(seasonal_amplitude_c=-1.0)
        with pytest.raises(PhysicalRangeError):
            WetBulbProfile(diurnal_amplitude_c=-0.5)

    def test_summer_hotter_than_winter(self):
        profile = WetBulbProfile()
        summer = profile.at(profile.peak_day_of_year * DAY)
        winter = profile.at((profile.peak_day_of_year + 182.5) * DAY)
        assert summer > winter + profile.seasonal_amplitude_c

    def test_afternoon_hotter_than_night(self):
        profile = WetBulbProfile()
        noonish = profile.at(100 * DAY + profile.peak_hour * 3600.0)
        night = profile.at(100 * DAY + ((profile.peak_hour + 12.0) % 24)
                           * 3600.0)
        assert noonish > night

    @given(st.floats(min_value=0.0, max_value=365.0 * DAY))
    def test_bounded_by_amplitudes(self, t):
        profile = WetBulbProfile()
        bound = (profile.seasonal_amplitude_c
                 + profile.diurnal_amplitude_c)
        assert abs(profile.at(t) - profile.annual_mean_c) <= bound + 1e-9

    def test_named_climates(self):
        assert set(CLIMATES) >= {"hangzhou", "singapore", "stockholm"}
        # Singapore is hot and flat; Stockholm cold and seasonal.
        assert CLIMATES["singapore"].annual_mean_c > \
            CLIMATES["stockholm"].annual_mean_c + 15.0
        assert CLIMATES["singapore"].seasonal_amplitude_c < \
            CLIMATES["stockholm"].seasonal_amplitude_c


class TestColdSourceProfile:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            ColdSourceProfile(seasonal_amplitude_c=-1.0)
        with pytest.raises(PhysicalRangeError):
            ColdSourceProfile(annual_mean_c=60.0)

    def test_default_matches_qiandao_lake(self):
        # Sec. III-C: "stabilizes perennially at 15-20 C".
        low, high = ColdSourceProfile().range_c()
        assert low == pytest.approx(15.0)
        assert high == pytest.approx(20.0)

    def test_lags_the_air(self):
        # Water peaks weeks after the air does.
        air = WetBulbProfile()
        water = ColdSourceProfile()
        assert water.peak_day_of_year > air.peak_day_of_year

    @given(st.floats(min_value=0.0, max_value=2 * 365.0 * DAY))
    def test_within_range(self, t):
        profile = ColdSourceProfile()
        low, high = profile.range_c()
        assert low - 1e-9 <= profile.at(t) <= high + 1e-9

    def test_annual_periodicity(self):
        profile = ColdSourceProfile()
        assert profile.at(10 * DAY) == pytest.approx(
            profile.at((365.0 + 10.0) * DAY), abs=1e-9)

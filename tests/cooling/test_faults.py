"""Fault-injection tests: resilience of the control loop."""

import numpy as np
import pytest

from repro.cooling.faults import DegradedChiller, FaultyCdu
from repro.cooling.loop import WaterCirculation
from repro.errors import PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting


class TestFaultyCdu:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PhysicalRangeError):
            FaultyCdu(fault_mode="gremlins")

    def test_no_fault_behaves_normally(self):
        cdu = FaultyCdu(fault_mode="none")
        wanted = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=45.0)
        assert cdu.apply(wanted) == wanted

    def test_stuck_flow(self):
        cdu = FaultyCdu(fault_mode="stuck_flow", stuck_flow_l_per_h=20.0)
        applied = cdu.apply(CoolingSetting(flow_l_per_h=200.0,
                                           inlet_temp_c=45.0))
        assert applied.flow_l_per_h == 20.0
        assert applied.inlet_temp_c == 45.0

    def test_stuck_temperature(self):
        cdu = FaultyCdu(fault_mode="stuck_temp", stuck_temp_c=50.0)
        applied = cdu.apply(CoolingSetting(flow_l_per_h=100.0,
                                           inlet_temp_c=30.0))
        assert applied.inlet_temp_c == 50.0

    def test_sensor_bias(self):
        cdu = FaultyCdu(fault_mode="sensor_bias", sensor_bias_c=3.0)
        applied = cdu.apply(CoolingSetting(flow_l_per_h=100.0,
                                           inlet_temp_c=45.0))
        assert applied.inlet_temp_c == pytest.approx(48.0)

    def test_bias_still_clamped(self):
        cdu = FaultyCdu(fault_mode="sensor_bias", sensor_bias_c=30.0)
        applied = cdu.apply(CoolingSetting(flow_l_per_h=100.0,
                                           inlet_temp_c=55.0))
        assert applied.inlet_temp_c <= cdu.max_supply_c


class TestFaultInCirculation:
    def test_biased_sensor_heats_cpus(self):
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=48.0)
        utils = np.full(5, 0.5)
        healthy = WaterCirculation(n_servers=5)
        healthy_state = healthy.evaluate(utils, setting)
        faulty = WaterCirculation(
            n_servers=5, cdu=FaultyCdu(fault_mode="sensor_bias",
                                       sensor_bias_c=4.0))
        faulty_state = faulty.evaluate(utils, setting)
        assert faulty_state.max_cpu_temp_c > \
            healthy_state.max_cpu_temp_c + 3.0
        # ...and, perversely, generates more (hotter outlet) — the
        # failure is silent if you only watch the TEG output.
        assert faulty_state.mean_generation_w > \
            healthy_state.mean_generation_w

    def test_stuck_cold_valve_hurts_generation(self):
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=52.0)
        utils = np.full(5, 0.3)
        healthy = WaterCirculation(n_servers=5)
        stuck = WaterCirculation(
            n_servers=5, cdu=FaultyCdu(fault_mode="stuck_temp",
                                       stuck_temp_c=35.0))
        assert stuck.evaluate(utils, setting).mean_generation_w < \
            healthy.evaluate(utils, setting).mean_generation_w


class TestDegradedChiller:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            DegradedChiller(degradation_factor=0.0)

    def test_degradation_raises_draw(self):
        healthy = DegradedChiller(degradation_factor=1.0)
        fouled = DegradedChiller(degradation_factor=0.5)
        assert fouled.electricity_w_for_heat(3600.0) == pytest.approx(
            2.0 * healthy.electricity_w_for_heat(3600.0))

    def test_eq10_scaled(self):
        fouled = DegradedChiller(degradation_factor=0.5)
        base = DegradedChiller(degradation_factor=1.0)
        assert fouled.cooling_energy_j(5.0, 10, 50.0, 3600.0) == \
            pytest.approx(2.0 * base.cooling_energy_j(5.0, 10, 50.0,
                                                      3600.0))

    def test_effective_cop(self):
        assert DegradedChiller(cop=3.6,
                               degradation_factor=0.5).effective_cop == \
            pytest.approx(1.8)

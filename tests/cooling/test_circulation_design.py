"""Circulation-design (Sec. V-A) tests: order statistics and Eq. 12."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cooling.circulation_design import (
    CirculationDesignProblem,
    expected_max_of_normal,
)
from repro.errors import PhysicalRangeError


class TestExpectedMax:
    def test_single_sample_is_mean(self):
        assert expected_max_of_normal(55.0, 6.0, 1) == 55.0

    def test_zero_sigma_is_mean(self):
        assert expected_max_of_normal(55.0, 0.0, 100) == 55.0

    def test_two_samples_analytic(self):
        # E[max of 2 standard normals] = 1/sqrt(pi).
        expected = expected_max_of_normal(0.0, 1.0, 2)
        assert expected == pytest.approx(1.0 / np.sqrt(np.pi), abs=1e-6)

    def test_grows_with_n(self):
        values = [expected_max_of_normal(55.0, 6.0, n)
                  for n in (1, 2, 10, 100, 1000)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_concave_growth(self):
        # Going 10 -> 100 adds more than 100 -> 1000 (log-like growth).
        g1 = (expected_max_of_normal(0.0, 1.0, 100)
              - expected_max_of_normal(0.0, 1.0, 10))
        g2 = (expected_max_of_normal(0.0, 1.0, 1000)
              - expected_max_of_normal(0.0, 1.0, 100))
        assert g1 > g2

    def test_matches_monte_carlo(self, rng):
        n = 50
        samples = rng.normal(55.0, 6.0, size=(20000, n)).max(axis=1)
        assert expected_max_of_normal(55.0, 6.0, n) == pytest.approx(
            samples.mean(), abs=0.1)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(PhysicalRangeError):
            expected_max_of_normal(0.0, -1.0, 10)
        with pytest.raises(PhysicalRangeError):
            expected_max_of_normal(0.0, 1.0, 0)

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_location_scale_property(self, n):
        base = expected_max_of_normal(0.0, 1.0, n)
        shifted = expected_max_of_normal(10.0, 2.0, n)
        assert shifted == pytest.approx(10.0 + 2.0 * base, abs=1e-6)


class TestDesignProblem:
    def test_invalid_slope_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CirculationDesignProblem(slope_k=0.8)

    def test_inlet_reduction_zero_for_cool_cluster(self):
        # If even the max CPU sits below T_safe, no chilling is needed.
        problem = CirculationDesignProblem(temp_mu_c=40.0, temp_sigma_c=2.0)
        assert problem.expected_inlet_reduction_c(100) == 0.0

    def test_inlet_reduction_grows_with_n(self):
        problem = CirculationDesignProblem()
        r10 = problem.expected_inlet_reduction_c(10)
        r1000 = problem.expected_inlet_reduction_c(1000)
        assert 0.0 <= r10 < r1000

    def test_chiller_energy_eq10(self):
        problem = CirculationDesignProblem()
        n = 100
        delta = problem.expected_inlet_reduction_c(n)
        # Reconstruct Eq. 10 by hand.
        mass_flow = n * 50.0 / 3600.0  # kg/s at 50 L/H per server
        heat_j = 4.2e3 * delta * mass_flow * problem.horizon_hours * 3600.0
        expected_kwh = heat_j / 3.6 / 3.6e6  # COP then J->kWh
        assert problem.chiller_energy_kwh(n) == pytest.approx(
            expected_kwh, rel=1e-6)

    def test_circulation_count_rounds_up(self):
        problem = CirculationDesignProblem(total_servers=1000)
        assert problem.circulation_count(1000) == 1
        assert problem.circulation_count(300) == 4
        assert problem.circulation_count(1) == 1000

    def test_hardware_cost_decreases_with_n(self):
        problem = CirculationDesignProblem()
        assert problem.hardware_cost_usd(1) > problem.hardware_cost_usd(100)

    def test_total_cost_combines(self):
        problem = CirculationDesignProblem()
        n = 50
        assert problem.total_cost_usd(n) == pytest.approx(
            problem.energy_cost_usd(n) + problem.hardware_cost_usd(n))


class TestOptimisation:
    def test_interior_optimum(self):
        # The Sec. V-A trade-off: neither 1 server/circulation (hardware-
        # dominated) nor 1000 (energy-dominated) is optimal.
        problem = CirculationDesignProblem()
        result = problem.optimise()
        assert 1 < result.best_n < problem.total_servers

    def test_best_cost_is_minimum(self):
        result = CirculationDesignProblem().optimise()
        assert result.best_cost_usd == pytest.approx(
            result.total_costs_usd.min())

    def test_cost_for_lookup(self):
        result = CirculationDesignProblem().optimise(candidates=[1, 10, 100])
        assert result.cost_for(10) > 0.0
        with pytest.raises(KeyError):
            result.cost_for(7)

    def test_explicit_candidates(self):
        result = CirculationDesignProblem().optimise(
            candidates=[5, 50, 500])
        assert set(result.candidate_n) == {5, 50, 500}
        assert result.best_n in {5, 50, 500}

    def test_invalid_candidates_rejected(self):
        problem = CirculationDesignProblem()
        with pytest.raises(PhysicalRangeError):
            problem.optimise(candidates=[0, 10])
        with pytest.raises(PhysicalRangeError):
            problem.optimise(candidates=[2000])
        with pytest.raises(PhysicalRangeError):
            problem.optimise(candidates=[])

    def test_cheap_chillers_push_toward_small_loops(self):
        from repro.cooling.chiller import Chiller

        expensive = CirculationDesignProblem()
        cheap = CirculationDesignProblem(
            chiller=Chiller(cop=3.6, capacity_kw=500, capex_usd=500.0))
        assert cheap.optimise().best_n <= expensive.optimise().best_n

    def test_volatile_loads_push_toward_small_loops(self):
        calm = CirculationDesignProblem(temp_sigma_c=2.0)
        volatile = CirculationDesignProblem(temp_sigma_c=10.0)
        assert volatile.optimise().best_n <= calm.optimise().best_n

"""Cooling tower tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cooling.cooling_tower import CoolingTower
from repro.errors import PhysicalRangeError


class TestValidation:
    def test_negative_approach_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CoolingTower(approach_c=-1.0)

    def test_negative_heat_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CoolingTower().electricity_w_for_heat(-5.0)

    def test_over_capacity_rejected(self):
        tower = CoolingTower(max_heat_kw=1.0)
        with pytest.raises(PhysicalRangeError):
            tower.electricity_w_for_heat(5000.0)


class TestReach:
    def test_coldest_supply(self):
        tower = CoolingTower(approach_c=4.0)
        assert tower.coldest_supply_c(18.0) == pytest.approx(22.0)

    def test_warm_water_reachable_without_chiller(self):
        # The warm-water premise: a 40+ C set-point is free-coolable in
        # any climate with a wet bulb below ~36 C.
        tower = CoolingTower()
        assert tower.can_reach(40.0, wet_bulb_c=30.0)

    def test_cold_water_not_reachable(self):
        # Legacy 7-10 C facility water cannot come from a tower alone.
        tower = CoolingTower()
        assert not tower.can_reach(8.0, wet_bulb_c=18.0)


class TestEconomy:
    def test_tower_much_cheaper_than_chiller(self):
        # Rejecting 1 kW: tower fans ~15 W vs chiller ~278 W at COP 3.6.
        tower = CoolingTower()
        assert tower.electricity_w_for_heat(1000.0) < 1000.0 / 3.6 / 5.0


class TestSplit:
    def test_all_tower_when_reachable(self):
        tower = CoolingTower()
        tower_heat, chiller_heat = tower.split_with_chiller(
            10_000.0, target_supply_c=45.0, wet_bulb_c=18.0)
        assert chiller_heat == 0.0
        assert tower_heat == 10_000.0

    def test_chiller_share_grows_with_shortfall(self):
        tower = CoolingTower(approach_c=4.0)
        _, chill_small = tower.split_with_chiller(10_000.0, 20.0, 18.0)
        _, chill_big = tower.split_with_chiller(10_000.0, 12.0, 18.0)
        assert 0.0 < chill_small < chill_big

    def test_split_conserves_heat(self):
        tower = CoolingTower()
        for target in (10.0, 18.0, 30.0, 45.0):
            t, c = tower.split_with_chiller(5000.0, target, 18.0)
            assert t + c == pytest.approx(5000.0)
            assert t >= 0.0 and c >= 0.0

    @given(st.floats(min_value=0.0, max_value=1e6),
           st.floats(min_value=5.0, max_value=50.0),
           st.floats(min_value=0.0, max_value=35.0))
    def test_split_always_conserves(self, heat, target, wet_bulb):
        tower = CoolingTower(max_heat_kw=2000.0)
        t, c = tower.split_with_chiller(heat, target, wet_bulb)
        assert t + c == pytest.approx(heat)

    def test_negative_heat_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CoolingTower().split_with_chiller(-1.0, 40.0, 18.0)

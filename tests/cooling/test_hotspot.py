"""Hot-spot scenario tests: chiller lag vs TEC rescue (Sec. II-B)."""

import numpy as np
import pytest

from repro.constants import CPU_MAX_OPERATING_TEMP_C
from repro.cooling.hotspot import HotSpotScenario
from repro.errors import ConfigurationError, PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting


@pytest.fixture(scope="module")
def outcomes():
    return HotSpotScenario().compare()


class TestValidation:
    def test_bad_utilisations_rejected(self):
        with pytest.raises(PhysicalRangeError):
            HotSpotScenario(spike_utilisation=1.5)
        with pytest.raises(PhysicalRangeError):
            HotSpotScenario(baseline_utilisation=-0.1)

    def test_bad_timing_rejected(self):
        with pytest.raises(PhysicalRangeError):
            HotSpotScenario(spike_duration_s=0.0)
        with pytest.raises(PhysicalRangeError):
            HotSpotScenario(tec_response_s=-1.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            HotSpotScenario().run("prayer")

    def test_bad_integration_arguments(self):
        with pytest.raises(PhysicalRangeError):
            HotSpotScenario().run("none", duration_s=0.0)
        with pytest.raises(PhysicalRangeError):
            HotSpotScenario().run("none", dt_s=-1.0)


class TestPaperNarrative:
    def test_unprotected_warm_water_violates(self, outcomes):
        # The Sec. II-B risk: warm water + sudden 100 % load = violation.
        assert outcomes["none"].violation

    def test_chiller_lag_misses_the_spike(self, outcomes):
        # The chiller reacts in minutes; the CPU crossed the limit in
        # seconds.  The violation happens anyway.
        assert outcomes["chiller"].violation
        assert outcomes["chiller"].time_above_limit_s > 30.0

    def test_tec_rescues(self, outcomes):
        # The fine-grained remedy: sub-second TEC response keeps the CPU
        # below the limit for the whole episode.
        assert not outcomes["tec"].violation
        assert outcomes["tec"].time_above_limit_s == 0.0

    def test_tec_costs_energy(self, outcomes):
        assert outcomes["tec"].tec_energy_j > 0.0
        assert outcomes["none"].tec_energy_j == 0.0

    def test_tec_peak_lower_than_unprotected(self, outcomes):
        assert outcomes["tec"].peak_cpu_temp_c \
            < outcomes["none"].peak_cpu_temp_c - 5.0


class TestDynamics:
    def test_starts_at_steady_state(self, outcomes):
        for outcome in outcomes.values():
            first = outcome.cpu_temp_c[0]
            # Pre-spike plateau: essentially flat over the first minute.
            pre = outcome.cpu_temp_c[outcome.times_s < 60.0]
            assert np.allclose(pre, first, atol=0.5)

    def test_rises_within_seconds(self, outcomes):
        # "They may exceed the safe operating temperature in a few
        # seconds": at least +10 C within 60 s of the spike.
        outcome = outcomes["none"]
        spike_mask = (outcome.times_s >= 60.0) & (outcome.times_s <= 120.0)
        rise = (outcome.cpu_temp_c[spike_mask].max()
                - outcome.cpu_temp_c[0])
        assert rise > 10.0

    def test_recovers_after_spike(self, outcomes):
        # After the spike the CPU returns to its pre-spike steady state.
        outcome = outcomes["none"]
        assert outcome.cpu_temp_c[-1] == pytest.approx(
            outcome.cpu_temp_c[0], abs=1.0)
        assert outcome.cpu_temp_c[-1] < outcome.peak_cpu_temp_c - 10.0

    def test_chiller_coolant_eventually_drops(self, outcomes):
        coolant = outcomes["chiller"].coolant_temp_c
        assert coolant[-1] < coolant[0] - 3.0

    def test_cooler_setpoint_prevents_violation_without_tec(self):
        # With a conservative (cold) set-point even the unprotected run
        # stays safe — the over-provisioning warm water avoids.
        scenario = HotSpotScenario(setting=CoolingSetting(
            flow_l_per_h=50.0, inlet_temp_c=40.0))
        outcome = scenario.run("none")
        assert not outcome.violation

    def test_short_spike_softens_peak(self):
        long = HotSpotScenario(spike_duration_s=240.0).run("none")
        short = HotSpotScenario(spike_duration_s=20.0).run("none")
        assert short.peak_cpu_temp_c < long.peak_cpu_temp_c

    def test_custom_duration_and_step(self):
        outcome = HotSpotScenario().run("none", duration_s=120.0,
                                        dt_s=0.25)
        assert outcome.times_s[-1] == pytest.approx(120.0)
        assert outcome.times_s[1] - outcome.times_s[0] == pytest.approx(
            0.25)

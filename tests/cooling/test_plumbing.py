"""Serial-vs-parallel plumbing tests."""

import numpy as np
import pytest

from repro.cooling.plumbing import PlumbingStudy
from repro.errors import PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting


@pytest.fixture(scope="module")
def study():
    return PlumbingStudy()


@pytest.fixture
def setting():
    return CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=48.0)


UTILS = np.full(5, 0.25)


class TestValidation:
    def test_bad_utilisations_rejected(self, study, setting):
        with pytest.raises(PhysicalRangeError):
            study.parallel(np.array([]), setting)
        with pytest.raises(PhysicalRangeError):
            study.serial(np.array([0.5, 1.5]), setting)


class TestParallel:
    def test_identical_inlets(self, study, setting):
        outcome = study.parallel(UTILS, setting)
        assert np.allclose(outcome.inlet_temps_c,
                           setting.inlet_temp_c)

    def test_uniform_load_uniform_outlets(self, study, setting):
        outcome = study.parallel(UTILS, setting)
        assert np.allclose(outcome.outlet_temps_c,
                           outcome.outlet_temps_c[0])


class TestSerial:
    def test_inlets_cascade(self, study, setting):
        outcome = study.serial(UTILS, setting)
        # Each server's inlet is the previous server's outlet.
        assert np.allclose(outcome.inlet_temps_c[1:],
                           outcome.outlet_temps_c[:-1])
        assert outcome.inlet_temps_c[0] == setting.inlet_temp_c

    def test_chain_outlet_hotter_than_parallel(self, study, setting):
        serial = study.serial(UTILS, setting)
        parallel = study.parallel(UTILS, setting)
        assert serial.final_outlet_c > parallel.final_outlet_c + 3.0

    def test_downstream_cpus_hotter(self, study, setting):
        outcome = study.serial(UTILS, setting)
        assert np.all(np.diff(outcome.cpu_temps_c) > 0.0)

    def test_naive_serial_generates_more_but_runs_hotter(self, study,
                                                         setting):
        # At the SAME group inlet the serial chain harvests more (hotter
        # chain outlet) but cooks its downstream CPUs harder — the
        # unfair comparison that makes serial look tempting.
        serial = study.serial(UTILS, setting)
        parallel = study.parallel(UTILS, setting)
        assert serial.generation_w > parallel.generation_w
        assert serial.max_cpu_temp_c > parallel.max_cpu_temp_c


class TestFairComparison:
    def test_equal_safety_equal_generation_for_uniform_load(self, study):
        # The study's punchline: with uniform load and the affine model,
        # once both arrangements are pushed to the same T_safe, the
        # binding stage sees the same inlet — so the chain outlet equals
        # the parallel outlet and generation ties (TEG count is equal by
        # construction).  Parallel then wins on robustness alone.
        flow, safe = 100.0, 62.0
        serial_inlet = study.safe_serial_inlet(UTILS, flow, safe)
        serial = study.serial(UTILS, CoolingSetting(
            flow_l_per_h=flow, inlet_temp_c=serial_inlet))
        parallel_inlet = study.cpu_model.inlet_for_cpu_temp(
            float(UTILS[0]), flow, safe)
        parallel = study.parallel(UTILS, CoolingSetting(
            flow_l_per_h=flow, inlet_temp_c=parallel_inlet))
        assert serial.generation_w == pytest.approx(
            parallel.generation_w, rel=0.02)

    def test_safe_serial_inlet_is_binding(self, study):
        inlet = study.safe_serial_inlet(UTILS, 100.0, 62.0)
        outcome = study.serial(UTILS, CoolingSetting(
            flow_l_per_h=100.0, inlet_temp_c=inlet))
        assert outcome.max_cpu_temp_c == pytest.approx(62.0, abs=0.01)

    def test_busy_first_beats_busy_last(self, study):
        # Ordering matters in a chain: the busy server belongs at the
        # COLD end, where its heat pre-warms everyone else instead of
        # arriving on top of their pre-heated water.
        busy_first = np.array([0.9, 0.2, 0.2, 0.2, 0.2])
        busy_last = busy_first[::-1].copy()
        flow, safe = 100.0, 62.0
        gen = {}
        for name, utils in (("first", busy_first), ("last", busy_last)):
            inlet = study.safe_serial_inlet(utils, flow, safe)
            gen[name] = study.serial(utils, CoolingSetting(
                flow_l_per_h=flow, inlet_temp_c=inlet)).generation_w
        assert gen["first"] > 1.2 * gen["last"]

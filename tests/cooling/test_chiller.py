"""Chiller model tests — Eq. 10 arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.cooling.chiller import Chiller, chiller_energy_kwh
from repro.errors import PhysicalRangeError


class TestChillerValidation:
    def test_invalid_cop_rejected(self):
        with pytest.raises(PhysicalRangeError):
            Chiller(cop=0.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(PhysicalRangeError):
            Chiller(capacity_kw=-1.0)

    def test_negative_heat_rejected(self):
        with pytest.raises(PhysicalRangeError):
            Chiller().electricity_w_for_heat(-1.0)

    def test_over_capacity_rejected(self):
        chiller = Chiller(capacity_kw=10.0)
        with pytest.raises(PhysicalRangeError):
            chiller.electricity_w_for_heat(20_000.0)


class TestElectricity:
    def test_cop_division(self):
        chiller = Chiller(cop=3.6)
        assert chiller.electricity_w_for_heat(3600.0) == pytest.approx(
            1000.0)

    def test_default_cop_matches_paper(self):
        assert Chiller().cop == 3.6


class TestEq10:
    def test_hand_computed_case(self):
        # Eq. 10: C_water * dT * n * f * t * rho / COP.
        # dT=5 C, n=10 servers, f=50 L/H, t=3600 s:
        # mass flow = 10 * 50/3600 kg/s = 0.1389 kg/s
        # heat = 4200 * 5 * 0.1389 * 3600 = 10.5e6 J -> /3.6 = 2.917e6 J.
        chiller = Chiller(cop=3.6)
        energy = chiller.cooling_energy_j(5.0, 10, 50.0, 3600.0)
        assert energy == pytest.approx(2.9167e6, rel=1e-3)

    def test_negative_delta_means_idle(self):
        assert Chiller().cooling_energy_j(-2.0, 10, 50.0, 3600.0) == 0.0

    def test_zero_duration(self):
        assert Chiller().cooling_energy_j(5.0, 10, 50.0, 0.0) == 0.0

    def test_invalid_servers_rejected(self):
        with pytest.raises(PhysicalRangeError):
            Chiller().cooling_energy_j(5.0, 0, 50.0, 3600.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(PhysicalRangeError):
            Chiller().cooling_energy_j(5.0, 10, 50.0, -1.0)

    @given(st.floats(min_value=0.0, max_value=20.0),
           st.integers(min_value=1, max_value=1000))
    def test_linear_in_delta_and_servers(self, delta, n):
        chiller = Chiller()
        base = chiller.cooling_energy_j(1.0, 1, 50.0, 3600.0)
        combined = chiller.cooling_energy_j(delta, n, 50.0, 3600.0)
        assert combined == pytest.approx(base * delta * n, rel=1e-9,
                                         abs=1e-6)

    def test_kwh_wrapper(self):
        joules = Chiller().cooling_energy_j(5.0, 10, 50.0, 3600.0)
        assert chiller_energy_kwh(5.0, 10, 50.0, 3600.0) == pytest.approx(
            joules / 3.6e6)


class TestResponseLag:
    def test_default_lag_is_minutes(self):
        # Sec. II-B: "the chiller needs a relatively long time (e.g.,
        # several minutes)" — the default must reflect that.
        assert Chiller().response_time_s >= 60.0

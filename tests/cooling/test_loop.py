"""Water circulation integration tests."""

import numpy as np
import pytest

from repro.cooling.loop import WaterCirculation
from repro.errors import ConfigurationError, PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting


@pytest.fixture
def circulation():
    return WaterCirculation(n_servers=8)


@pytest.fixture
def setting():
    return CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=48.0)


class TestValidation:
    def test_zero_servers_rejected(self):
        with pytest.raises(PhysicalRangeError):
            WaterCirculation(n_servers=0)

    def test_wrong_vector_length_rejected(self, circulation, setting):
        with pytest.raises(ConfigurationError):
            circulation.evaluate([0.5] * 3, setting)

    def test_out_of_range_utilisation_rejected(self, circulation, setting):
        with pytest.raises(PhysicalRangeError):
            circulation.evaluate([0.5] * 7 + [1.5], setting)


class TestEvaluation:
    def test_shapes(self, circulation, setting):
        state = circulation.evaluate(np.linspace(0, 1, 8), setting)
        assert state.cpu_temps_c.shape == (8,)
        assert state.outlet_temps_c.shape == (8,)
        assert state.teg_powers_w.shape == (8,)

    def test_hotter_cpu_for_higher_load(self, circulation, setting):
        state = circulation.evaluate(np.linspace(0, 1, 8), setting)
        assert np.all(np.diff(state.cpu_temps_c) > 0)

    def test_outlets_above_inlet(self, circulation, setting):
        state = circulation.evaluate(np.linspace(0, 1, 8), setting)
        assert np.all(state.outlet_temps_c > setting.inlet_temp_c)

    def test_generation_positive_in_warm_regime(self, circulation, setting):
        state = circulation.evaluate([0.3] * 8, setting)
        assert np.all(state.teg_powers_w > 0.0)
        assert 2.0 < state.mean_generation_w < 6.0

    def test_no_generation_with_cold_loop(self, circulation):
        cold = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=20.0)
        # With a 20 C loop the outlet barely exceeds the 20 C cold source.
        state = circulation.evaluate([0.1] * 8, cold)
        assert state.mean_generation_w < 0.3

    def test_warm_setting_needs_no_chiller(self, circulation, setting):
        # 48 C supply is reachable by the tower alone: free cooling.
        state = circulation.evaluate([0.5] * 8, setting)
        assert state.chiller_power_w == 0.0
        assert state.tower_power_w > 0.0

    def test_cold_setting_engages_chiller(self, circulation):
        state = circulation.evaluate(
            [0.5] * 8, CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=15.0))
        assert state.chiller_power_w > 0.0

    def test_pump_power_scales_with_servers(self, setting):
        small = WaterCirculation(n_servers=4)
        large = WaterCirculation(n_servers=8)
        s_state = small.evaluate([0.5] * 4, setting)
        l_state = large.evaluate([0.5] * 8, setting)
        assert l_state.pump_power_w == pytest.approx(
            2.0 * s_state.pump_power_w)

    def test_cdu_clamps_setting(self, circulation):
        wild = CoolingSetting(flow_l_per_h=900.0, inlet_temp_c=75.0)
        state = circulation.evaluate([0.5] * 8, wild)
        assert state.setting.flow_l_per_h <= 300.0
        assert state.setting.inlet_temp_c <= 60.0


class TestAggregates:
    def test_totals_consistent(self, circulation, setting):
        state = circulation.evaluate(np.linspace(0, 1, 8), setting)
        assert state.total_generation_w == pytest.approx(
            state.teg_powers_w.sum())
        assert state.total_cpu_power_w == pytest.approx(
            state.cpu_powers_w.sum())
        assert state.mean_generation_w == pytest.approx(
            state.teg_powers_w.mean())
        assert state.max_cpu_temp_c == pytest.approx(
            state.cpu_temps_c.max())


class TestSafety:
    def test_violations_detected(self, circulation):
        hot = CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=58.0)
        state = circulation.evaluate([1.0] * 8, hot)
        assert len(circulation.safety_violations(state)) == 8

    def test_no_violations_in_safe_regime(self, circulation, setting):
        state = circulation.evaluate([0.5] * 8, setting)
        assert circulation.safety_violations(state) == []

    def test_margin_tightens(self, circulation):
        warmish = CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=50.0)
        state = circulation.evaluate([1.0] * 8, warmish)
        relaxed = circulation.safety_violations(state)
        strict = circulation.safety_violations(state, margin_c=15.0)
        assert len(strict) >= len(relaxed)

"""Thermoelectric cooler (hybrid-cooling substrate) tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cooling.tec import ThermoelectricCooler
from repro.errors import PhysicalRangeError


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ThermoelectricCooler(seebeck_v_per_k=0.0)
        with pytest.raises(PhysicalRangeError):
            ThermoelectricCooler(resistance_ohm=-1.0)
        with pytest.raises(PhysicalRangeError):
            ThermoelectricCooler(max_current_a=0.0)

    def test_current_limits_enforced(self):
        tec = ThermoelectricCooler(max_current_a=6.0)
        with pytest.raises(PhysicalRangeError):
            tec.heat_pumped_w(7.0, 50.0, 60.0)
        with pytest.raises(PhysicalRangeError):
            tec.electrical_power_w(-1.0, 50.0, 60.0)

    def test_side_ordering_enforced(self):
        with pytest.raises(PhysicalRangeError):
            ThermoelectricCooler().heat_pumped_w(2.0, 70.0, 50.0)


class TestPeltierPhysics:
    def test_pumps_heat_at_moderate_current(self):
        tec = ThermoelectricCooler()
        assert tec.heat_pumped_w(3.0, 55.0, 60.0) > 0.0

    def test_zero_current_leaks_backwards(self):
        # Without drive the TEC is just a (bad) conductor: negative
        # "pumping" equals the conduction leak.
        tec = ThermoelectricCooler()
        pumped = tec.heat_pumped_w(0.0, 50.0, 60.0)
        assert pumped == pytest.approx(
            -tec.thermal_conductance_w_per_k * 10.0)

    def test_electrical_power_quadratic_in_current(self):
        tec = ThermoelectricCooler()
        p1 = tec.electrical_power_w(1.0, 55.0, 55.0)
        p2 = tec.electrical_power_w(2.0, 55.0, 55.0)
        assert p2 == pytest.approx(4.0 * p1)  # pure Joule when dT = 0

    def test_cop_positive_and_finite(self):
        tec = ThermoelectricCooler()
        cop = tec.cop(3.0, 55.0, 60.0)
        assert 0.0 < cop < 10.0

    def test_cop_degrades_with_gradient(self):
        tec = ThermoelectricCooler()
        assert tec.cop(3.0, 55.0, 58.0) > tec.cop(3.0, 45.0, 60.0)

    @given(st.floats(min_value=0.5, max_value=6.0))
    def test_energy_balance(self, current):
        # Heat rejected at the hot side = heat pumped + electrical input;
        # our interface exposes the two right-hand terms — both finite.
        tec = ThermoelectricCooler()
        pumped = tec.heat_pumped_w(current, 55.0, 60.0)
        power = tec.electrical_power_w(current, 55.0, 60.0)
        assert power > 0.0
        assert pumped < power + tec.seebeck_v_per_k * current * 400.0


class TestOptimalDrive:
    def test_optimal_current_within_limits(self):
        tec = ThermoelectricCooler()
        best = tec.optimal_current_a(55.0, 60.0)
        assert 0.0 < best <= tec.max_current_a

    def test_max_heat_at_optimal(self):
        tec = ThermoelectricCooler()
        best = tec.optimal_current_a(55.0, 60.0)
        max_pumped = tec.max_heat_pumped_w(55.0, 60.0)
        assert max_pumped == pytest.approx(
            tec.heat_pumped_w(best, 55.0, 60.0))
        # And nearby currents do no better.
        for current in (best * 0.8, min(tec.max_current_a, best * 1.2)):
            assert tec.heat_pumped_w(current, 55.0, 60.0) <= max_pumped + 1e-9

    def test_hotspot_relief_positive(self):
        tec = ThermoelectricCooler()
        relief = tec.hotspot_relief_c(77.0, 60.0, 70.0)
        assert relief > 0.0

    def test_relief_bounded_by_cpu_power(self):
        # The TEC cannot remove more heat than the CPU produces.
        tec = ThermoelectricCooler()
        relief = tec.hotspot_relief_c(10.0, 60.0, 70.0,
                                      junction_resistance_k_per_w=0.3)
        assert relief <= 10.0 * 0.3 + 1e-9

    def test_negative_cpu_power_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ThermoelectricCooler().hotspot_relief_c(-1.0, 60.0, 70.0)

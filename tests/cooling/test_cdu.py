"""Coolant distribution unit tests."""

import pytest

from repro.cooling.cdu import CoolantDistributionUnit
from repro.errors import PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting


class TestValidation:
    def test_inverted_supply_band_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CoolantDistributionUnit(min_supply_c=60.0, max_supply_c=20.0)

    def test_inverted_flow_band_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CoolantDistributionUnit(min_flow_l_per_h=300.0,
                                    max_flow_l_per_h=20.0)


class TestSettingManagement:
    def test_default_setting_is_mid_band(self):
        cdu = CoolantDistributionUnit()
        assert cdu.setting.inlet_temp_c == pytest.approx(40.0)

    def test_clamp_flow(self):
        cdu = CoolantDistributionUnit()
        clamped = cdu.clamp(CoolingSetting(flow_l_per_h=500.0,
                                           inlet_temp_c=45.0))
        assert clamped.flow_l_per_h == cdu.max_flow_l_per_h

    def test_clamp_temperature_both_sides(self):
        cdu = CoolantDistributionUnit()
        hot = cdu.clamp(CoolingSetting(flow_l_per_h=50.0, inlet_temp_c=80.0))
        cold = cdu.clamp(CoolingSetting(flow_l_per_h=50.0, inlet_temp_c=5.0))
        assert hot.inlet_temp_c == cdu.max_supply_c
        assert cold.inlet_temp_c == cdu.min_supply_c

    def test_apply_remembers(self):
        cdu = CoolantDistributionUnit()
        wanted = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=45.0)
        applied = cdu.apply(wanted)
        assert applied == wanted
        assert cdu.setting == wanted

    def test_in_band_setting_unchanged(self):
        cdu = CoolantDistributionUnit()
        setting = CoolingSetting(flow_l_per_h=150.0, inlet_temp_c=50.0)
        assert cdu.clamp(setting) == setting


class TestHeatRejection:
    def test_rejects_heat_downhill(self):
        cdu = CoolantDistributionUnit()
        heat, tcs_out = cdu.reject_to_fws(
            tcs_return_c=50.0, fws_supply_c=25.0,
            tcs_flow_l_per_h=1000.0, fws_flow_l_per_h=2000.0)
        assert heat > 0.0
        assert 25.0 < tcs_out < 50.0

    def test_no_uphill_transfer(self):
        cdu = CoolantDistributionUnit()
        heat, tcs_out = cdu.reject_to_fws(
            tcs_return_c=25.0, fws_supply_c=40.0,
            tcs_flow_l_per_h=1000.0, fws_flow_l_per_h=1000.0)
        assert heat == 0.0
        assert tcs_out == pytest.approx(25.0)

"""Heat-reuse alternative tests (district heating, CCHP, comparison)."""

import numpy as np
import pytest

from repro.environment import CLIMATES, WetBulbProfile
from repro.errors import PhysicalRangeError
from repro.heatreuse.cchp import CchpPlant
from repro.heatreuse.comparison import ReuseComparison
from repro.heatreuse.district import (
    DistrictHeatingSystem,
    HeatDemandProfile,
)


class TestHeatDemandProfile:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            HeatDemandProfile(peak_demand_kw=0.0)

    def test_no_demand_in_warm_weather(self):
        profile = HeatDemandProfile(climate=CLIMATES["singapore"])
        assert profile.heating_hours_per_year() == 0

    def test_winter_demand_peaks(self):
        profile = HeatDemandProfile(climate=CLIMATES["stockholm"],
                                    peak_demand_kw=100.0)
        demand = profile.hourly_demand_kw()
        assert demand.max() == pytest.approx(100.0, rel=0.02)

    def test_seasonality(self):
        # Winter demand exceeds summer demand in a seasonal climate.
        profile = HeatDemandProfile(climate=CLIMATES["stockholm"])
        demand = profile.hourly_demand_kw()
        january = demand[:31 * 24].mean()
        july = demand[181 * 24:212 * 24].mean()
        assert january > july

    def test_heating_hours_ordering(self):
        # Colder climates need heat for more of the year.
        hours = {name: HeatDemandProfile(
            climate=CLIMATES[name]).heating_hours_per_year()
            for name in ("stockholm", "hangzhou", "singapore")}
        assert hours["stockholm"] > hours["hangzhou"] \
            > hours["singapore"]

    def test_demand_nonnegative(self):
        profile = HeatDemandProfile()
        assert np.all(profile.hourly_demand_kw() >= 0.0)


class TestDistrictHeatingSystem:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            DistrictHeatingSystem(transport_efficiency=0.0)
        with pytest.raises(PhysicalRangeError):
            DistrictHeatingSystem(heat_price_usd_per_kwh=-1.0)
        with pytest.raises(PhysicalRangeError):
            DistrictHeatingSystem().absorbed_heat_kwh_per_year(-1.0)

    def test_absorption_bounded_by_supply(self):
        system = DistrictHeatingSystem(
            demand=HeatDemandProfile(climate=CLIMATES["stockholm"],
                                     peak_demand_kw=1e6))
        supply_kw = 100.0
        absorbed = system.absorbed_heat_kwh_per_year(supply_kw)
        assert absorbed <= supply_kw * 8760.0

    def test_absorption_bounded_by_demand(self):
        system = DistrictHeatingSystem(
            demand=HeatDemandProfile(climate=CLIMATES["stockholm"],
                                     peak_demand_kw=10.0))
        absorbed = system.absorbed_heat_kwh_per_year(1e6)
        assert absorbed <= 10.0 * 8760.0

    def test_utilisation_zero_in_tropics(self):
        system = DistrictHeatingSystem(
            demand=HeatDemandProfile(climate=CLIMATES["singapore"]))
        assert system.utilisation_factor(100.0) == 0.0

    def test_utilisation_partial_in_cold_climate(self):
        # Even in Stockholm the paper's mismatch shows: a constant
        # datacenter stream is only partially absorbed over the year.
        system = DistrictHeatingSystem(
            demand=HeatDemandProfile(climate=CLIMATES["stockholm"],
                                     peak_demand_kw=100.0))
        utilisation = system.utilisation_factor(100.0)
        assert 0.2 < utilisation < 0.8

    def test_transport_losses_reduce_sales(self):
        demand = HeatDemandProfile(climate=CLIMATES["stockholm"],
                                   peak_demand_kw=100.0)
        lossy = DistrictHeatingSystem(demand=demand,
                                      transport_efficiency=0.6)
        clean = DistrictHeatingSystem(demand=demand,
                                      transport_efficiency=1.0)
        assert lossy.absorbed_heat_kwh_per_year(100.0) < \
            clean.absorbed_heat_kwh_per_year(100.0)

    def test_pipeline_cost_can_sink_the_project(self):
        demand = HeatDemandProfile(climate=CLIMATES["stockholm"],
                                   peak_demand_kw=50.0)
        expensive = DistrictHeatingSystem(demand=demand,
                                          pipeline_capex_usd=1e8)
        assert expensive.annual_revenue_usd(50.0) < 0.0


class TestCchpPlant:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            CchpPlant(electrical_efficiency=0.0)
        with pytest.raises(PhysicalRangeError):
            CchpPlant(electrical_efficiency=0.6,
                      heat_recovery_efficiency=0.5)
        with pytest.raises(PhysicalRangeError):
            CchpPlant().electricity_kwh_per_year(-1.0)
        with pytest.raises(PhysicalRangeError):
            CchpPlant().gas_kwh_per_year(10.0, datacenter_heat_kw=-1.0)

    def test_energy_flows_consistent(self):
        plant = CchpPlant()
        electricity = plant.electricity_kwh_per_year(100.0)
        gas = plant.gas_kwh_per_year(100.0)
        # Without the DC credit: gas = electricity / eta_e.
        assert gas == pytest.approx(
            electricity / plant.electrical_efficiency)
        cooling = plant.cooling_kwh_per_year(100.0)
        assert cooling < gas  # second-law sanity

    def test_datacenter_heat_trims_fuel(self):
        plant = CchpPlant()
        without = plant.gas_kwh_per_year(100.0)
        with_dc = plant.gas_kwh_per_year(100.0, datacenter_heat_kw=48.0)
        assert with_dc < without
        # But only by the small low-grade boost, not dramatically.
        assert (without - with_dc) / without < 0.05

    def test_value_needs_decent_tariff(self):
        plant = CchpPlant()
        rich = plant.annual_net_value_usd(100.0, 0.13)
        poor = plant.annual_net_value_usd(100.0, 0.03)
        assert rich > 0.0 > poor


class TestReuseComparison:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            ReuseComparison(n_servers=0)
        with pytest.raises(PhysicalRangeError):
            ReuseComparison(heat_per_server_kw=0.0)
        with pytest.raises(PhysicalRangeError):
            ReuseComparison(teg_generation_per_server_w=-1.0)

    def test_h2p_value_climate_independent(self):
        values = [ReuseComparison(
            climate=CLIMATES[name]).h2p_option().annual_value_usd
            for name in ("stockholm", "hangzhou", "singapore")]
        assert max(values) == pytest.approx(min(values))

    def test_district_value_ordering(self):
        # The Sec. I/II-C geography argument: district heating's value
        # drops monotonically from high-latitude to tropical sites.
        values = {name: ReuseComparison(
            climate=CLIMATES[name]).district_option().annual_value_usd
            for name in ("stockholm", "hangzhou", "singapore")}
        assert values["stockholm"] > values["hangzhou"] \
            > values["singapore"]

    def test_district_negative_in_tropics(self):
        option = ReuseComparison(
            climate=CLIMATES["singapore"]).district_option()
        assert option.annual_value_usd < 0.0
        assert option.utilisation == 0.0

    def test_h2p_beats_district_in_warm_climates(self):
        for name in ("hangzhou", "singapore"):
            comparison = ReuseComparison(climate=CLIMATES[name])
            assert comparison.h2p_option().annual_value_usd > \
                comparison.district_option().annual_value_usd, name

    def test_all_options_sorted(self):
        options = ReuseComparison().all_options()
        values = [option.annual_value_usd for option in options]
        assert values == sorted(values, reverse=True)
        assert len(options) == 3

    def test_cchp_mostly_ignores_dc_heat(self):
        option = ReuseComparison().cchp_option()
        assert option.utilisation <= 0.1

"""Reporting helper tests."""

import numpy as np
import pytest

from repro.errors import PhysicalRangeError
from repro.reporting import (
    comparison_report,
    format_table,
    result_report,
    strip_chart,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bbbb"], [[1.0, "x"], [22.5, "yy"]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # All lines equally wide.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        table = format_table(["v"], [[1.23456]])
        assert "1.235" in table

    def test_custom_float_format(self):
        table = format_table(["v"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in table

    def test_empty_headers_rejected(self):
        with pytest.raises(PhysicalRangeError):
            format_table([], [])

    def test_ragged_rows_rejected(self):
        with pytest.raises(PhysicalRangeError):
            format_table(["a", "b"], [[1.0]])

    def test_no_rows_is_fine(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestStripChart:
    def test_renders_extremes(self):
        chart = strip_chart([0.0, 1.0], width=2)
        assert chart.startswith("|")
        assert chart[1] == " "   # minimum glyph
        assert chart[2] == "@"   # maximum glyph

    def test_label(self):
        chart = strip_chart([1.0, 2.0], label="gen")
        assert chart.startswith("gen")

    def test_flat_series(self):
        chart = strip_chart([0.5] * 10)
        assert set(chart.strip("|")) == {" "}

    def test_downsampling(self):
        chart = strip_chart(np.linspace(0, 1, 600), width=60)
        # 600 points into 60 columns.
        assert len(chart.strip("|")) == 60

    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            strip_chart([])
        with pytest.raises(PhysicalRangeError):
            strip_chart([1.0], width=0)


class TestRunReports:
    @pytest.fixture(scope="class")
    def comparison(self, tiny_traces):
        import repro

        return repro.H2PSystem().compare(tiny_traces["common"])

    def test_result_report_contents(self, comparison):
        report = result_report(comparison.baseline)
        assert "TEG_Original" in report
        assert "PRE" in report
        assert "violations" in report

    def test_comparison_report_contents(self, comparison):
        report = comparison_report(comparison)
        assert "TEG_Original" in report
        assert "TEG_LoadBalance" in report
        assert "utilisation" in report
        assert "generation" in report
        assert "%" in report

    def test_comparison_chart_width(self, comparison):
        report = comparison_report(comparison, chart_width=30)
        chart_lines = [line for line in report.splitlines()
                       if line.endswith("|")]
        assert len(chart_lines) == 2

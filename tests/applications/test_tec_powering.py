"""TEG-TEC coupling tests (Sec. VI-C1)."""

import pytest

from repro.applications.tec_powering import TegTecCoupling
from repro.errors import PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting


@pytest.fixture(scope="module")
def coupling():
    return TegTecCoupling()


@pytest.fixture
def setting():
    return CoolingSetting(flow_l_per_h=50.0, inlet_temp_c=48.0)


class TestEvaluation:
    def test_disabled_tec_is_neutral(self, coupling, setting):
        outcome = coupling.evaluate(0.5, setting, tec_current_a=0.0)
        assert outcome.tec_power_w == 0.0
        assert outcome.outlet_rise_c == 0.0
        assert outcome.extra_generation_w == 0.0
        assert outcome.self_power_fraction == 1.0

    def test_running_tec_raises_outlet(self, coupling, setting):
        # Sec. VI-C1: "the outlet water temperature of CPU is higher when
        # TEC is working".
        outcome = coupling.evaluate(0.6, setting, tec_current_a=3.0)
        assert outcome.outlet_rise_c > 0.0
        assert outcome.generation_with_tec_w > \
            outcome.generation_without_tec_w

    def test_tec_costs_more_than_extra_generation(self, coupling, setting):
        # The coupling softens but does not erase the TEC's cost — TEGs
        # are ~5 % devices.
        outcome = coupling.evaluate(0.6, setting, tec_current_a=3.0)
        assert 0.0 <= outcome.self_power_fraction < 1.0
        assert outcome.net_cost_w > 0.0

    def test_more_current_more_rise(self, coupling, setting):
        low = coupling.evaluate(0.6, setting, tec_current_a=1.0)
        high = coupling.evaluate(0.6, setting, tec_current_a=4.0)
        assert high.outlet_rise_c > low.outlet_rise_c
        assert high.tec_power_w > low.tec_power_w

    def test_negative_current_rejected(self, coupling, setting):
        with pytest.raises(PhysicalRangeError):
            coupling.evaluate(0.6, setting, tec_current_a=-1.0)

    def test_pumping_positive_at_moderate_drive(self, coupling, setting):
        outcome = coupling.evaluate(0.8, setting, tec_current_a=3.0)
        assert outcome.tec_heat_pumped_w >= 0.0

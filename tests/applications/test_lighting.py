"""TEG-powered LED lighting tests (Sec. VI-C2)."""

import pytest

from repro.applications.lighting import (
    HIGH_POWER_LED,
    Led,
    LedLightingPlan,
    ORDINARY_LED,
)
from repro.errors import PhysicalRangeError


class TestLed:
    def test_paper_led_classes(self):
        # "The power of an ordinary LED is generally 0.05 W ... even
        # high-power LEDs work at 1 W and 2 W."
        assert ORDINARY_LED.power_w == pytest.approx(0.05)
        assert 1.0 <= HIGH_POWER_LED.power_w <= 2.0

    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            Led(power_w=0.0)
        with pytest.raises(PhysicalRangeError):
            Led(forward_voltage_v=-1.0)
        with pytest.raises(PhysicalRangeError):
            Led(luminous_flux_lm=-5.0)


class TestSizing:
    def test_paper_claim_dozens_of_ordinary_leds(self):
        # "TEGs in H2P can generate 3 W or more electricity, which is
        # enough for supplying power for some of the LEDs."
        plan = LedLightingPlan(led=ORDINARY_LED)
        assert plan.leds_supported(3.0) >= 50

    def test_high_power_leds_few(self):
        plan = LedLightingPlan(led=HIGH_POWER_LED)
        assert 2 <= plan.leds_supported(4.177) <= 4

    def test_zero_generation_zero_leds(self):
        assert LedLightingPlan().leds_supported(0.0) == 0

    def test_converter_losses_reduce_count(self):
        lossy = LedLightingPlan(converter_efficiency=0.5)
        clean = LedLightingPlan(converter_efficiency=1.0)
        assert lossy.leds_supported(4.0) < clean.leds_supported(4.0)

    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            LedLightingPlan(converter_efficiency=0.0)
        with pytest.raises(PhysicalRangeError):
            LedLightingPlan().leds_supported(-1.0)


class TestEnergyAccounting:
    def test_luminous_flux(self):
        plan = LedLightingPlan(led=HIGH_POWER_LED)
        leds = plan.leds_supported(4.0)
        assert plan.luminous_flux_lm(4.0) == pytest.approx(
            leds * HIGH_POWER_LED.luminous_flux_lm)

    def test_monthly_energy_saving(self):
        plan = LedLightingPlan(led=HIGH_POWER_LED)
        saved = plan.energy_saved_kwh_per_month(4.177)
        # 3 LEDs x 1 W x 720 h = 2.16 kWh.
        assert saved == pytest.approx(3 * 720.0 / 1000.0)

    def test_duty_cycle(self):
        plan = LedLightingPlan(led=HIGH_POWER_LED)
        half = plan.energy_saved_kwh_per_month(4.0, duty_cycle=0.5)
        full = plan.energy_saved_kwh_per_month(4.0, duty_cycle=1.0)
        assert half == pytest.approx(full / 2.0)

    def test_bad_duty_cycle_rejected(self):
        with pytest.raises(PhysicalRangeError):
            LedLightingPlan().energy_saved_kwh_per_month(4.0,
                                                         duty_cycle=1.5)

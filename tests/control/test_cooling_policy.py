"""Cooling-policy tests (Sec. V-B1, Fig. 13)."""

import numpy as np
import pytest

from repro.constants import CPU_SAFE_TEMP_C
from repro.control.cooling_policy import (
    AnalyticPolicy,
    LookupSpacePolicy,
    StaticPolicy,
)
from repro.errors import ConfigurationError, PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting


@pytest.fixture
def lookup_policy(lookup_space):
    return LookupSpacePolicy(space=lookup_space, aggregation="max")


class TestStaticPolicy:
    def test_always_same_setting(self):
        policy = StaticPolicy()
        d1 = policy.decide([0.1, 0.2])
        d2 = policy.decide([0.9, 0.95])
        assert d1.setting == d2.setting

    def test_predictions_filled(self):
        decision = StaticPolicy().decide([0.5])
        assert decision.predicted_cpu_temp_c > 0.0
        assert decision.predicted_outlet_temp_c > \
            decision.setting.inlet_temp_c
        assert decision.predicted_generation_w >= 0.0


class TestBindingUtilisation:
    def test_max_aggregation(self, lookup_policy):
        decision = lookup_policy.decide([0.1, 0.6, 0.3])
        assert decision.binding_utilisation == pytest.approx(0.6)

    def test_avg_aggregation(self, lookup_space):
        policy = LookupSpacePolicy(space=lookup_space, aggregation="avg")
        decision = policy.decide([0.1, 0.6, 0.2])
        assert decision.binding_utilisation == pytest.approx(0.3)

    def test_empty_rejected(self, lookup_policy):
        with pytest.raises(ConfigurationError):
            lookup_policy.decide([])

    def test_out_of_range_rejected(self, lookup_policy):
        with pytest.raises(PhysicalRangeError):
            lookup_policy.decide([0.5, 1.4])

    def test_bad_aggregation_rejected(self, lookup_space):
        policy = LookupSpacePolicy(space=lookup_space,
                                   aggregation="median")
        with pytest.raises(ConfigurationError):
            policy.decide([0.5])


class TestLookupSpacePolicy:
    def test_cpu_held_near_safe_temp(self, lookup_policy):
        decision = lookup_policy.decide([0.5, 0.6, 0.7])
        assert decision.predicted_cpu_temp_c == pytest.approx(
            CPU_SAFE_TEMP_C, abs=1.5)

    def test_lower_load_hotter_inlet(self, lookup_policy):
        # The heart of the optimisation: cooler clusters allow hotter
        # water, hence more generation.
        low = lookup_policy.decide([0.2])
        high = lookup_policy.decide([0.8])
        assert low.setting.inlet_temp_c > high.setting.inlet_temp_c
        assert low.predicted_generation_w > high.predicted_generation_w

    def test_balanced_beats_unbalanced(self, lookup_space):
        # The Fig. 13 A_avg-vs-A_max contrast on one decision.
        utils = [0.1, 0.2, 0.8]
        original = LookupSpacePolicy(space=lookup_space,
                                     aggregation="max").decide(utils)
        balanced = LookupSpacePolicy(space=lookup_space,
                                     aggregation="avg").decide(utils)
        assert balanced.predicted_generation_w > \
            original.predicted_generation_w

    def test_idle_cluster_uses_fallback_hottest(self):
        # With an actuator whose inlet tops out at 48 C, an idle CPU can
        # never reach T_safe: the fallback must pick a hot (maximum
        # generation), still-safe setting — not emergency cold.
        import numpy as np
        from repro.control.lookup_space import LookupSpace

        capped_space = LookupSpace(
            inlet_grid=np.linspace(20.0, 44.0, 13))
        policy = LookupSpacePolicy(space=capped_space, aggregation="max")
        decision = policy.decide([0.0, 0.0])
        assert decision.predicted_cpu_temp_c < CPU_SAFE_TEMP_C
        assert decision.setting.inlet_temp_c == pytest.approx(44.0)
        assert decision.predicted_generation_w > 1.5

    def test_overload_fallback_cools_hard(self, lookup_space):
        # With a very low safe temperature nothing is admissible: the
        # policy must pick the coldest, fastest setting.
        policy = LookupSpacePolicy(space=lookup_space, safe_temp_c=20.0,
                                   aggregation="max")
        decision = policy.decide([1.0])
        assert decision.setting.inlet_temp_c == pytest.approx(
            float(lookup_space.inlet_grid[0]))
        assert decision.setting.flow_l_per_h == pytest.approx(
            float(lookup_space.flow_grid[-1]))

    def test_decisions_cached(self, lookup_space):
        policy = LookupSpacePolicy(space=lookup_space, aggregation="max")
        d1 = policy.decide([0.5])
        d2 = policy.decide([0.5])
        assert d1 is d2  # cache hit returns the same object

    def test_cache_resolution_distinguishes(self, lookup_space):
        policy = LookupSpacePolicy(space=lookup_space, aggregation="max")
        d1 = policy.decide([0.2])
        d2 = policy.decide([0.8])
        assert d1 is not d2


class TestAnalyticPolicy:
    def test_cpu_exactly_at_safe_temp_when_unclamped(self):
        policy = AnalyticPolicy(inlet_max_c=70.0)
        decision = policy.decide([0.7])
        assert decision.predicted_cpu_temp_c == pytest.approx(
            CPU_SAFE_TEMP_C, abs=1e-6)

    def test_clamped_inlet_respected(self):
        policy = AnalyticPolicy(inlet_max_c=50.0)
        decision = policy.decide([0.05])
        assert decision.setting.inlet_temp_c <= 50.0

    def test_lower_load_more_generation(self):
        policy = AnalyticPolicy()
        low = policy.decide([0.2])
        high = policy.decide([0.9])
        assert low.predicted_generation_w >= high.predicted_generation_w

    def test_net_of_pump_prefers_lower_flow(self):
        gross = AnalyticPolicy(net_of_pump=False).decide([0.5])
        net = AnalyticPolicy(net_of_pump=True).decide([0.5])
        assert net.setting.flow_l_per_h <= gross.setting.flow_l_per_h

    def test_analytic_upper_bounds_lookup(self, lookup_space):
        # The analytic optimum is the continuous version of the lookup
        # search; it can only do better (or equal within grid error).
        utils = [0.4, 0.5]
        lookup = LookupSpacePolicy(space=lookup_space,
                                   aggregation="max").decide(utils)
        analytic = AnalyticPolicy(
            inlet_max_c=float(lookup_space.inlet_grid[-1]),
            flow_candidates=tuple(float(f)
                                  for f in lookup_space.flow_grid),
        ).decide(utils)
        assert analytic.predicted_generation_w >= \
            lookup.predicted_generation_w - 0.15


# ----------------------------------------------------------------------
# Batched decisions (the decide_batch fast path of the kernel pipeline)
# ----------------------------------------------------------------------

from hypothesis import given, settings, strategies as st  # noqa: E402

#: Pre-aggregated binding utilisations, the decide_batch input domain.
binding_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=12)


class TestBatchScalarEquivalence:
    """``decide_batch`` must reproduce the scalar ``decide`` bit for bit.

    The vectorised kernel pipeline funnels every cooling decision
    through ``decide_batch``; any divergence from the scalar path —
    however small — would break the engine's bit-identity contract, so
    equality here is exact (``PolicyDecision`` compares all five floats
    with ``==``), not approximate.
    """

    def assert_equivalent(self, make_policy, bindings):
        batch_policy = make_policy()
        scalar_policy = make_policy()
        batched = batch_policy.decide_batch(bindings)
        scalar = [scalar_policy.decide([b]) for b in bindings]
        assert batched == scalar
        # Memoising policies must also leave the memo in the same
        # state (same buckets, primed in the same first-occurrence
        # order) — shards clone it, so a drifted memo breaks parity
        # later even if this batch matched.
        batch_memo = getattr(batch_policy, "_cache", None)
        if batch_memo is not None:
            scalar_memo = scalar_policy._cache
            assert list(batch_memo) == list(scalar_memo)
            assert batch_memo == scalar_memo

    @given(bindings=binding_lists)
    def test_static_policy(self, bindings):
        self.assert_equivalent(StaticPolicy, bindings)

    @settings(max_examples=40, deadline=None)
    @given(bindings=binding_lists)
    def test_analytic_policy(self, bindings):
        self.assert_equivalent(AnalyticPolicy, bindings)

    @settings(max_examples=15, deadline=None)
    @given(bindings=binding_lists)
    def test_analytic_policy_net_of_pump(self, bindings):
        self.assert_equivalent(lambda: AnalyticPolicy(net_of_pump=True),
                               bindings)

    @settings(max_examples=15, deadline=None)
    @given(bindings=binding_lists)
    def test_lookup_policy(self, lookup_space, bindings):
        self.assert_equivalent(
            lambda: LookupSpacePolicy(space=lookup_space), bindings)

    @settings(max_examples=10, deadline=None)
    @given(bindings=binding_lists)
    def test_lookup_policy_avg_aggregation(self, lookup_space, bindings):
        self.assert_equivalent(
            lambda: LookupSpacePolicy(space=lookup_space,
                                      aggregation="avg"), bindings)

    def test_extreme_loads_hit_fallback_branches(self, lookup_space):
        # Deterministic anchors for the two fallback branches (idle
        # below the band, overload above it) on top of the random
        # sweep above.
        self.assert_equivalent(
            lambda: LookupSpacePolicy(space=lookup_space),
            [0.0, 1.0, 0.5, 0.0, 1.0])

    def test_empty_batch_is_noop(self, lookup_space):
        policy = LookupSpacePolicy(space=lookup_space)
        assert policy.decide_batch([]) == []
        assert policy._cache == {}

    def test_batch_rejects_out_of_range(self, lookup_space):
        for policy in (StaticPolicy(), AnalyticPolicy(),
                       LookupSpacePolicy(space=lookup_space)):
            with pytest.raises(PhysicalRangeError):
                policy.decide_batch([0.5, 1.5])

"""Predictive cooling-policy tests."""

import numpy as np
import pytest

from repro.constants import CPU_SAFE_TEMP_C
from repro.control.cooling_policy import AnalyticPolicy
from repro.control.predictive import PredictivePolicy
from repro.errors import PhysicalRangeError
from repro.thermal.cpu_model import CpuThermalModel
from repro.workloads.forecast import EwmaForecaster


class TestConstruction:
    def test_bad_warmup_rejected(self):
        with pytest.raises(PhysicalRangeError):
            PredictivePolicy(warmup_intervals=0)


class TestBehaviour:
    def test_warmup_uses_measurement(self):
        policy = PredictivePolicy(warmup_intervals=2)
        reactive = AnalyticPolicy()
        measured = [0.4, 0.5]
        # During warm-up the decisions match the reactive baseline.
        assert policy.decide(measured).setting == \
            reactive.decide(measured).setting

    def test_forecast_takes_over_after_warmup(self):
        policy = PredictivePolicy(
            warmup_intervals=1,
            forecaster=EwmaForecaster(alpha=1.0, margin_sigmas=2.0))
        model = CpuThermalModel()
        # A noisy load: the margin should make the predictive policy
        # pick a *colder* inlet than the reactive one would.
        rng = np.random.default_rng(0)
        reactive = AnalyticPolicy()
        last_decision = None
        for _ in range(8):
            utils = np.clip(rng.normal(0.4, 0.15, 10), 0, 1)
            last_decision = policy.decide(utils)
            last_reactive = reactive.decide(utils)
        assert last_decision.setting.inlet_temp_c <= \
            last_reactive.setting.inlet_temp_c + 1e-9

    def test_rising_load_anticipated(self):
        # Feed a steady ramp: the forecast (with margin) exceeds the
        # last measurement, so the predicted binding utilisation is
        # higher than the reactive one.
        policy = PredictivePolicy(
            warmup_intervals=1,
            forecaster=EwmaForecaster(alpha=1.0, margin_sigmas=1.0))
        decision = None
        for level in (0.2, 0.3, 0.4, 0.5):
            decision = policy.decide([level] * 5)
        assert decision.binding_utilisation >= 0.5

    def test_safety_preserved_under_spikes(self):
        # Even with a drastic load, the decided settings keep the CPU at
        # or below the safe band for the *measured* load.
        model = CpuThermalModel()
        policy = PredictivePolicy()
        rng = np.random.default_rng(1)
        for _ in range(20):
            utils = np.clip(rng.uniform(0.0, 1.0, 8), 0, 1)
            decision = policy.decide(utils)
            worst = model.cpu_temp_c(float(np.max(utils)),
                                     decision.setting)
            # Forecast margin can only make the setting colder than the
            # reactive optimum, never hotter than the safe band.
            assert worst <= CPU_SAFE_TEMP_C + 1.5

    def test_reset_restores_warmup(self):
        policy = PredictivePolicy(warmup_intervals=1)
        policy.decide([0.5])
        policy.decide([0.5])
        policy.reset()
        reactive = AnalyticPolicy()
        assert policy.decide([0.9]).setting == \
            reactive.decide([0.9]).setting

"""Lookup-space (Fig. 12/13) tests."""

import numpy as np
import pytest

from repro.control.lookup_space import LookupSpace
from repro.errors import ConfigurationError, PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting, CpuThermalModel


class TestConstruction:
    def test_default_grid_size(self, lookup_space):
        assert lookup_space.n_points == 11 * 7 * 21

    def test_bad_grids_rejected(self):
        with pytest.raises(ConfigurationError):
            LookupSpace(utilisation_grid=np.array([0.5]))
        with pytest.raises(ConfigurationError):
            LookupSpace(flow_grid=np.array([100.0, 50.0]))

    def test_iter_points_count(self):
        space = LookupSpace(
            utilisation_grid=np.linspace(0, 1, 3),
            flow_grid=np.array([20.0, 100.0]),
            inlet_grid=np.linspace(30.0, 50.0, 4))
        assert len(list(space.iter_points())) == 3 * 2 * 4


class TestInterpolation:
    def test_exact_on_grid(self, lookup_space, cpu_model):
        # At grid nodes the interpolation equals the model exactly.
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=40.0)
        assert lookup_space.cpu_temp_c(0.5, 100.0, 40.0) == pytest.approx(
            cpu_model.cpu_temp_c(0.5, setting))

    def test_close_off_grid(self, lookup_space, cpu_model):
        # Between nodes, trilinear interpolation stays close to the model
        # (the paper's premise: T_CPU is continuous and near-linear).
        setting = CoolingSetting(flow_l_per_h=85.0, inlet_temp_c=43.7)
        assert lookup_space.cpu_temp_c(0.37, 85.0, 43.7) == pytest.approx(
            cpu_model.cpu_temp_c(0.37, setting), abs=1.0)

    def test_outlet_interpolation(self, lookup_space, cpu_model):
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=40.0)
        assert lookup_space.outlet_temp_c(0.5, 100.0, 40.0) == \
            pytest.approx(cpu_model.outlet_temp_c(0.5, setting))

    def test_out_of_bounds_rejected(self, lookup_space):
        with pytest.raises(ValueError):
            lookup_space.cpu_temp_c(0.5, 100.0, 90.0)

    def test_invalid_utilisation_rejected(self, lookup_space):
        with pytest.raises(PhysicalRangeError):
            lookup_space.cpu_temp_c(1.5, 100.0, 40.0)


class TestSafeRegion:
    def test_region_points_near_safe_temp(self, lookup_space):
        region = lookup_space.safe_region(0.3, safe_temp_c=62.0,
                                          tolerance_c=1.0)
        assert region
        for point in region:
            assert abs(point.cpu_temp_c - 62.0) <= 1.0
            assert point.utilisation == 0.3

    def test_region_respects_tolerance(self, lookup_space):
        tight = lookup_space.safe_region(0.3, 62.0, tolerance_c=0.5)
        loose = lookup_space.safe_region(0.3, 62.0, tolerance_c=2.0)
        assert len(tight) <= len(loose)

    def test_bad_tolerance_rejected(self, lookup_space):
        with pytest.raises(PhysicalRangeError):
            lookup_space.safe_region(0.3, 62.0, tolerance_c=0.0)

    def test_empty_region_for_unreachable_band(self, lookup_space):
        # No admissible setting pushes an idle CPU to 85 C (the hottest
        # grid point tops out near 77 C).
        assert lookup_space.safe_region(0.0, 85.0, 0.5) == []

    def test_fig13_higher_inlet_for_lower_utilisation(self, lookup_space):
        # Fig. 13: the A_avg region (low u) sits at higher T_warm_in than
        # the A_max region (high u).
        low_u = lookup_space.safe_region(0.2, 62.0, 1.0)
        high_u = lookup_space.safe_region(0.7, 62.0, 1.0)
        assert low_u and high_u
        mean_inlet_low = np.mean([p.inlet_temp_c for p in low_u])
        mean_inlet_high = np.mean([p.inlet_temp_c for p in high_u])
        assert mean_inlet_low > mean_inlet_high

    def test_point_setting_accessor(self, lookup_space):
        region = lookup_space.safe_region(0.3, 62.0, 1.0)
        point = region[0]
        setting = point.setting
        assert setting.flow_l_per_h == point.flow_l_per_h
        assert setting.inlet_temp_c == point.inlet_temp_c


class TestCustomModel:
    def test_space_reflects_model(self):
        # A model with a TEG in the CPU heat path produces a hotter space.
        hot_model = CpuThermalModel(extra_resistance_k_per_w=1.0)
        space = LookupSpace(model=hot_model,
                            utilisation_grid=np.linspace(0, 1, 3),
                            flow_grid=np.array([20.0, 100.0]),
                            inlet_grid=np.linspace(30.0, 50.0, 5))
        base = LookupSpace(utilisation_grid=np.linspace(0, 1, 3),
                           flow_grid=np.array([20.0, 100.0]),
                           inlet_grid=np.linspace(30.0, 50.0, 5))
        assert space.cpu_temp_c(1.0, 20.0, 40.0) > base.cpu_temp_c(
            1.0, 20.0, 40.0) + 50.0


class TestPlaneBatch:
    """plane_temperatures_batch row i == plane_temperatures(u_i), bitwise."""

    def test_rows_match_scalar_planes(self, lookup_space):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=20, deadline=None)
        @given(utils=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1, max_size=6))
        def check(utils):
            cpu_b, out_b = lookup_space.plane_temperatures_batch(utils)
            assert cpu_b.shape == (len(utils), len(lookup_space.flow_grid),
                                   len(lookup_space.inlet_grid))
            for i, u in enumerate(utils):
                cpu, out = lookup_space.plane_temperatures(u)
                assert np.array_equal(cpu_b[i], cpu)
                assert np.array_equal(out_b[i], out)

        check()

    def test_batch_validates_like_scalar(self, lookup_space):
        with pytest.raises(PhysicalRangeError):
            lookup_space.plane_temperatures_batch([0.2, 1.2])
        with pytest.raises(ConfigurationError):
            lookup_space.plane_temperatures_batch([[0.2], [0.4]])

"""Workload scheduler tests (Sec. V-B2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.control.scheduling import (
    IdealBalancer,
    NoScheduler,
    ThresholdBalancer,
)
from repro.errors import PhysicalRangeError

util_vectors = arrays(float, st.integers(min_value=1, max_value=30),
                      elements=st.floats(min_value=0.0, max_value=1.0))


class TestNoScheduler:
    def test_identity(self):
        utils = np.array([0.1, 0.9, 0.4])
        assert np.array_equal(NoScheduler().schedule(utils), utils)

    def test_returns_copy(self):
        utils = np.array([0.1, 0.9])
        result = NoScheduler().schedule(utils)
        result[0] = 0.5
        assert utils[0] == 0.1

    def test_aggregation_is_max(self):
        # TEG_Original keys the cooling on the hottest server.
        assert NoScheduler().policy_aggregation == "max"

    def test_invalid_input_rejected(self):
        with pytest.raises(PhysicalRangeError):
            NoScheduler().schedule(np.array([1.5]))
        with pytest.raises(PhysicalRangeError):
            NoScheduler().schedule(np.array([]))


class TestIdealBalancer:
    def test_flattens_to_mean(self):
        utils = np.array([0.2, 0.4, 0.9])
        result = IdealBalancer().schedule(utils)
        assert np.allclose(result, utils.mean())

    def test_aggregation_is_avg(self):
        # TEG_LoadBalance keys the cooling on the average.
        assert IdealBalancer().policy_aggregation == "avg"

    @given(util_vectors)
    def test_work_preserved(self, utils):
        result = IdealBalancer().schedule(utils)
        assert result.sum() == pytest.approx(utils.sum(), abs=1e-9)

    @given(util_vectors)
    def test_max_never_raised(self, utils):
        result = IdealBalancer().schedule(utils)
        assert result.max() <= utils.max() + 1e-12


class TestThresholdBalancer:
    def test_invalid_cap_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ThresholdBalancer(cap=1.5)

    def test_cap_one_is_identity(self):
        utils = np.array([0.2, 0.8, 0.5])
        result = ThresholdBalancer(cap=1.0).schedule(utils)
        assert np.allclose(result, utils)

    def test_cap_zero_is_ideal(self):
        utils = np.array([0.2, 0.8, 0.5])
        result = ThresholdBalancer(cap=0.0).schedule(utils)
        assert np.allclose(result, utils.mean())

    def test_shaves_above_cap(self):
        utils = np.array([0.9, 0.1, 0.1])
        result = ThresholdBalancer(cap=0.5).schedule(utils)
        assert result.max() <= 0.5 + 1e-9

    def test_cold_servers_absorb(self):
        utils = np.array([0.9, 0.1, 0.1])
        result = ThresholdBalancer(cap=0.5).schedule(utils)
        assert result[1] > 0.1 and result[2] > 0.1

    def test_no_action_below_cap(self):
        utils = np.array([0.2, 0.3, 0.4])
        result = ThresholdBalancer(cap=0.5).schedule(utils)
        assert np.allclose(result, utils)

    def test_cap_below_mean_clamped(self):
        # Cannot flatten below the average: degenerates to ideal balance.
        utils = np.array([0.9, 0.9, 0.9])
        result = ThresholdBalancer(cap=0.1).schedule(utils)
        assert np.allclose(result, 0.9)

    @given(util_vectors, st.floats(min_value=0.0, max_value=1.0))
    def test_invariants(self, utils, cap):
        result = ThresholdBalancer(cap=cap).schedule(utils)
        assert result.sum() == pytest.approx(utils.sum(), abs=1e-6)
        assert np.all(result >= -1e-12)
        assert np.all(result <= 1.0 + 1e-12)
        assert result.max() <= utils.max() + 1e-9

    @given(util_vectors)
    def test_between_extremes(self, utils):
        # Threshold balancing never exceeds the unbalanced max and never
        # goes below the ideal-balanced max.
        result = ThresholdBalancer(cap=0.5).schedule(utils)
        assert utils.mean() - 1e-9 <= result.max() <= utils.max() + 1e-9

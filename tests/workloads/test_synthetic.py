"""Synthetic trace generator tests — the three paper classes."""

import numpy as np
import pytest

from repro.errors import PhysicalRangeError
from repro.workloads.synthetic import (
    TRACE_GENERATORS,
    common_trace,
    drastic_trace,
    irregular_trace,
    trace_by_name,
)


class TestRegistry:
    def test_all_three_classes(self):
        assert set(TRACE_GENERATORS) == {"drastic", "irregular", "common"}

    def test_trace_by_name(self):
        trace = trace_by_name("common", n_servers=10,
                              duration_s=3600.0, seed=0)
        assert trace.name == "common"
        assert trace.n_servers == 10

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            trace_by_name("bursty")


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = drastic_trace(n_servers=20, duration_s=7200.0, seed=42)
        b = drastic_trace(n_servers=20, duration_s=7200.0, seed=42)
        assert np.array_equal(a.utilisation, b.utilisation)

    def test_different_seeds_differ(self):
        a = drastic_trace(n_servers=20, duration_s=7200.0, seed=1)
        b = drastic_trace(n_servers=20, duration_s=7200.0, seed=2)
        assert not np.array_equal(a.utilisation, b.utilisation)


class TestPaperShapes:
    """The qualitative structure the paper assigns to each class."""

    @pytest.fixture(scope="class")
    def traces(self):
        kwargs = dict(n_servers=300, duration_s=12 * 3600.0)
        return {
            "drastic": drastic_trace(seed=0, **kwargs),
            "irregular": irregular_trace(seed=1, **kwargs),
            "common": common_trace(seed=2, **kwargs),
        }

    def test_default_durations(self):
        # Alibaba: 12 h; Google selections: 24 h.
        assert drastic_trace(n_servers=5).duration_s == 12 * 3600.0
        assert irregular_trace(n_servers=5).duration_s == 24 * 3600.0
        assert common_trace(n_servers=5).duration_s == 24 * 3600.0

    def test_default_server_counts(self):
        assert drastic_trace(duration_s=3600.0).n_servers == 1313
        assert irregular_trace(duration_s=3600.0).n_servers == 1000

    def test_volatility_ordering(self, traces):
        # Drastic >> irregular > common in step-to-step movement.
        v = {k: t.statistics().volatility for k, t in traces.items()}
        assert v["drastic"] > 3.0 * v["irregular"]
        assert v["irregular"] > v["common"]

    def test_irregular_has_high_peaks(self, traces):
        stats = traces["irregular"].statistics()
        # Background is calm (p95 low) but peaks reach high utilisation.
        assert stats.p95 < 0.35
        assert stats.max > 0.6

    def test_common_has_small_range(self, traces):
        stats = traces["common"].statistics()
        assert stats.max < 0.85
        assert stats.std < 0.12

    def test_mean_utilisations_match_pre_arithmetic(self, traces):
        # Back-solved from the paper's PRE numbers: drastic ~0.26,
        # irregular ~0.19, common ~0.25 (see module docstring).
        assert traces["drastic"].statistics().mean == pytest.approx(
            0.27, abs=0.04)
        assert traces["irregular"].statistics().mean == pytest.approx(
            0.19, abs=0.04)
        assert traces["common"].statistics().mean == pytest.approx(
            0.25, abs=0.04)

    def test_all_in_unit_interval(self, traces):
        for trace in traces.values():
            assert trace.utilisation.min() >= 0.0
            assert trace.utilisation.max() <= 1.0

    def test_diurnal_pattern_present(self):
        # 24 h classes must be busier in the afternoon than pre-dawn.
        trace = common_trace(n_servers=100, seed=3)
        hours = trace.times_s / 3600.0
        afternoon = trace.mean_per_step()[(hours >= 12) & (hours < 16)]
        night = trace.mean_per_step()[(hours >= 2) & (hours < 6)]
        assert afternoon.mean() > night.mean()


class TestArguments:
    def test_bad_duration_rejected(self):
        with pytest.raises(PhysicalRangeError):
            drastic_trace(n_servers=5, duration_s=0.0)

    def test_bad_interval_rejected(self):
        with pytest.raises(PhysicalRangeError):
            common_trace(n_servers=5, interval_s=-5.0)

    def test_sub_interval_duration_rejected(self):
        with pytest.raises(PhysicalRangeError):
            common_trace(n_servers=5, duration_s=10.0, interval_s=300.0)

    def test_custom_interval(self):
        trace = irregular_trace(n_servers=5, duration_s=3600.0,
                                interval_s=600.0)
        assert trace.interval_s == 600.0
        assert trace.n_steps == 6

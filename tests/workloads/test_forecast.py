"""Forecasting tests."""

import numpy as np
import pytest

from repro.errors import PhysicalRangeError
from repro.workloads.forecast import (
    Ar1Forecaster,
    EwmaForecaster,
    backtest,
)
from repro.workloads.synthetic import common_trace, drastic_trace


class TestEwma:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(PhysicalRangeError):
            EwmaForecaster(margin_sigmas=-1.0)
        with pytest.raises(PhysicalRangeError):
            EwmaForecaster().predict()  # no observations yet
        f = EwmaForecaster()
        f.observe(np.array([0.5]))
        with pytest.raises(PhysicalRangeError):
            f.observe(np.array([0.5, 0.4]))  # width changed

    def test_constant_series_predicted_exactly(self):
        f = EwmaForecaster(margin_sigmas=0.0)
        for _ in range(10):
            f.observe(np.array([0.4, 0.6]))
        assert np.allclose(f.predict(), [0.4, 0.6])

    def test_margin_adds_headroom(self):
        rng = np.random.default_rng(0)
        series = 0.4 + rng.normal(0, 0.1, size=(50, 3))
        plain = EwmaForecaster(margin_sigmas=0.0)
        padded = EwmaForecaster(margin_sigmas=2.0)
        for row in series:
            clipped = np.clip(row, 0, 1)
            plain.observe(clipped)
            padded.observe(clipped)
        assert np.all(padded.predict() >= plain.predict())

    def test_forecast_clipped_to_unit_interval(self):
        f = EwmaForecaster(margin_sigmas=5.0)
        for _ in range(5):
            f.observe(np.array([0.95, 0.05]))
            f.observe(np.array([0.5, 0.5]))
        prediction = f.predict()
        assert np.all(prediction <= 1.0)
        assert np.all(prediction >= 0.0)


class TestAr1:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            Ar1Forecaster(forgetting=0.4)
        with pytest.raises(PhysicalRangeError):
            Ar1Forecaster().predict()

    def test_learns_mean_reversion(self):
        # An alternating series has rho ~ -1: the forecast should flip
        # to the other side of the mean.
        f = Ar1Forecaster(margin_sigmas=0.0)
        for i in range(60):
            f.observe(np.array([0.3 if i % 2 == 0 else 0.7]))
        last_was = 0.7 if 59 % 2 else 0.3
        prediction = float(f.predict()[0])
        # Next value is the opposite extreme; forecast leans that way.
        expected = 0.3 if last_was == 0.7 else 0.7
        assert abs(prediction - expected) < 0.15

    def test_constant_series(self):
        f = Ar1Forecaster(margin_sigmas=0.0)
        for _ in range(20):
            f.observe(np.array([0.55]))
        assert f.predict()[0] == pytest.approx(0.55, abs=1e-6)


class TestBacktest:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            backtest(EwmaForecaster(), np.zeros((2, 3)))

    def test_persistent_trace_forecasts_well(self):
        trace = common_trace(n_servers=40, duration_s=12 * 3600.0,
                             seed=4)
        score = backtest(EwmaForecaster(margin_sigmas=0.0),
                         trace.utilisation)
        # Common-class traces are highly persistent: tiny MAE.
        assert score["mae"] < 0.02

    def test_margin_buys_coverage(self):
        trace = drastic_trace(n_servers=40, duration_s=12 * 3600.0,
                              seed=4)
        plain = backtest(EwmaForecaster(alpha=1.0, margin_sigmas=0.0),
                         trace.utilisation)
        padded = backtest(EwmaForecaster(alpha=1.0, margin_sigmas=2.0),
                          trace.utilisation)
        assert padded["binding_coverage"] > plain["binding_coverage"]

    def test_ar1_beats_naive_on_mean_reverting_load(self):
        # Drastic traces are weakly persistent (rho ~ 0.3): reverting to
        # the mean forecasts better than carrying the last value.
        trace = drastic_trace(n_servers=60, duration_s=12 * 3600.0,
                              seed=8)
        naive = backtest(EwmaForecaster(alpha=1.0, margin_sigmas=0.0),
                         trace.utilisation)
        ar1 = backtest(Ar1Forecaster(margin_sigmas=0.0),
                       trace.utilisation)
        assert ar1["mae"] < naive["mae"]

"""Trace analytics and classifier tests."""

import numpy as np
import pytest

from repro.errors import PhysicalRangeError
from repro.workloads.analysis import (
    TraceClassifier,
    autocorrelation,
    extract_features,
)
from repro.workloads.trace import WorkloadTrace


def make_trace(matrix, interval=300.0):
    return WorkloadTrace(np.asarray(matrix, dtype=float), interval)


class TestAutocorrelation:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            autocorrelation(np.array([]))
        with pytest.raises(PhysicalRangeError):
            autocorrelation(np.array([1.0, 2.0]), lag=2)
        with pytest.raises(PhysicalRangeError):
            autocorrelation(np.array([[1.0], [2.0]]))

    def test_flat_series_zero(self):
        assert autocorrelation(np.full(10, 0.4)) == 0.0

    def test_persistent_series_high(self):
        rng = np.random.default_rng(0)
        series = np.cumsum(rng.normal(0, 0.01, 500)) + 0.5
        assert autocorrelation(series) > 0.9

    def test_alternating_series_negative(self):
        series = np.array([0.1, 0.9] * 50)
        assert autocorrelation(series) < -0.9

    def test_lag_parameter(self):
        series = np.sin(np.linspace(0, 8 * np.pi, 200))
        # Half a period apart: strongly negative.
        assert autocorrelation(series, lag=25) < -0.9


class TestExtractFeatures:
    def test_constant_trace(self):
        features = extract_features(make_trace(np.full((20, 5), 0.3)))
        assert features.mean == pytest.approx(0.3)
        assert features.std == 0.0
        assert features.volatility == 0.0
        assert features.spike_rate == 0.0
        assert features.heterogeneity == 0.0

    def test_volatility_detects_movement(self):
        rng = np.random.default_rng(1)
        noisy = np.clip(0.3 + rng.normal(0, 0.15, (50, 10)), 0, 1)
        calm = np.clip(0.3 + rng.normal(0, 0.005, (50, 10)), 0, 1)
        assert extract_features(make_trace(noisy)).volatility > \
            5.0 * extract_features(make_trace(calm)).volatility

    def test_spikes_detected(self):
        matrix = np.full((100, 10), 0.2)
        matrix[50, 3] = 0.9  # one transient spike
        features = extract_features(make_trace(matrix))
        assert features.spike_rate > 0.0

    def test_persistent_hot_server_not_a_spike(self):
        matrix = np.full((100, 10), 0.2)
        matrix[:, 3] = 0.7  # steadily busy server
        features = extract_features(make_trace(matrix))
        assert features.spike_rate == 0.0
        assert features.heterogeneity > 0.1

    def test_diurnality_needs_a_full_day(self):
        hours = np.arange(288) * 300.0 / 3600.0
        daily = 0.3 + 0.1 * np.cos(2 * np.pi * hours / 24.0)
        matrix = np.repeat(daily[:, None], 4, axis=1)
        features = extract_features(make_trace(matrix))
        assert features.diurnality == pytest.approx(0.1, abs=0.01)

    def test_short_trace_no_diurnality(self):
        features = extract_features(make_trace(np.full((10, 4), 0.3)))
        assert features.diurnality == 0.0


class TestClassifier:
    def test_classifies_the_synthetic_generators(self, tiny_traces):
        # The classifier must agree with the generators' own labels.
        # (tiny_traces are 4-hour slices; use full-length ones for the
        # diurnal/spike structure to be present.)
        from repro.workloads.synthetic import trace_by_name

        classifier = TraceClassifier()
        for name in ("drastic", "irregular", "common"):
            trace = trace_by_name(name, n_servers=200)
            assert classifier.classify(trace) == name, name

    def test_explain_contains_class_and_features(self):
        from repro.workloads.synthetic import common_trace

        explanation = TraceClassifier().explain(
            common_trace(n_servers=50, seed=9))
        assert explanation["class"] == "common"
        for key in ("volatility", "spike_rate", "mean", "persistence"):
            assert key in explanation

    def test_flat_trace_is_common(self):
        trace = make_trace(np.full((50, 10), 0.25))
        assert TraceClassifier().classify(trace) == "common"

    def test_noisy_trace_is_drastic(self):
        rng = np.random.default_rng(3)
        matrix = np.clip(rng.uniform(0, 1, (50, 10)), 0, 1)
        assert TraceClassifier().classify(make_trace(matrix)) == "drastic"

"""Scenario-builder tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicalRangeError
from repro.workloads.scenarios import ScenarioBuilder
from repro.workloads.synthetic import common_trace


class TestConstruction:
    def test_bad_dimensions_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ScenarioBuilder(n_servers=0)
        with pytest.raises(PhysicalRangeError):
            ScenarioBuilder(duration_s=-1.0)
        with pytest.raises(PhysicalRangeError):
            ScenarioBuilder(duration_s=10.0, interval_s=300.0)

    def test_from_base_trace(self):
        base = common_trace(n_servers=12, duration_s=3600.0, seed=5)
        built = ScenarioBuilder(base=base).build()
        assert built.n_servers == 12
        assert built.n_steps == base.n_steps

    def test_empty_builder_is_idle(self):
        trace = ScenarioBuilder(n_servers=4, duration_s=1800.0).build()
        assert trace.utilisation.max() == 0.0


class TestEvents:
    def builder(self):
        return ScenarioBuilder(n_servers=6, duration_s=7200.0,
                               interval_s=300.0)

    def test_background(self):
        trace = self.builder().background(0.3).build()
        assert np.allclose(trace.utilisation, 0.3)

    def test_background_validation(self):
        with pytest.raises(PhysicalRangeError):
            self.builder().background(1.5)

    def test_step_window(self):
        trace = (self.builder().background(0.2)
                 .step(start_s=1800.0, magnitude=0.5,
                       duration_s=1800.0, servers=[2])
                 .build())
        matrix = trace.utilisation
        assert matrix[5, 2] == pytest.approx(0.2)   # before
        assert matrix[7, 2] == pytest.approx(0.7)   # during
        assert matrix[13, 2] == pytest.approx(0.2)  # after
        assert matrix[7, 3] == pytest.approx(0.2)   # other server

    def test_step_without_duration_persists(self):
        trace = (self.builder().background(0.1)
                 .step(start_s=3600.0, magnitude=0.4).build())
        assert trace.utilisation[-1, 0] == pytest.approx(0.5)

    def test_step_after_end_rejected(self):
        with pytest.raises(ConfigurationError):
            self.builder().step(start_s=10_000.0, magnitude=0.5)

    def test_negative_step_allowed(self):
        trace = (self.builder().background(0.6)
                 .step(start_s=0.0, magnitude=-0.4,
                       duration_s=600.0).build())
        assert trace.utilisation[0, 0] == pytest.approx(0.2)

    def test_ramp_reaches_and_holds(self):
        trace = (self.builder()
                 .ramp(start_s=0.0, duration_s=3600.0, magnitude=0.8)
                 .build())
        matrix = trace.utilisation
        assert matrix[0, 0] == pytest.approx(0.0)
        assert matrix[11, 0] == pytest.approx(0.8, abs=0.08)
        assert matrix[-1, 0] == pytest.approx(0.8)

    def test_sine_symmetric(self):
        trace = (self.builder().background(0.5)
                 .sine(period_s=3600.0, amplitude=0.2).build())
        assert trace.utilisation.mean() == pytest.approx(0.5, abs=0.02)
        assert trace.utilisation.max() > 0.65

    def test_runaway_pins_server(self):
        trace = (self.builder().background(0.2)
                 .runaway(server=4, start_s=3600.0).build())
        assert np.all(trace.utilisation[12:, 4] == 1.0)
        assert np.all(trace.utilisation[:12, 4] == pytest.approx(0.2))

    def test_noise_deterministic(self):
        a = self.builder().background(0.5).noise(0.05, seed=7).build()
        b = self.builder().background(0.5).noise(0.05, seed=7).build()
        assert np.array_equal(a.utilisation, b.utilisation)

    def test_server_index_validation(self):
        with pytest.raises(ConfigurationError):
            self.builder().background(0.2, servers=[9])
        with pytest.raises(ConfigurationError):
            self.builder().background(0.2, servers=[])

    def test_always_clipped(self):
        trace = (self.builder().background(0.9)
                 .step(start_s=0.0, magnitude=0.9)
                 .noise(0.3, seed=1).build())
        assert trace.utilisation.max() <= 1.0
        assert trace.utilisation.min() >= 0.0


class TestPolicyIntegration:
    def test_runaway_scenario_drives_policy_cold(self):
        from repro.control.cooling_policy import AnalyticPolicy

        trace = (ScenarioBuilder(n_servers=10, duration_s=7200.0)
                 .background(0.2).runaway(server=0, start_s=3600.0)
                 .build())
        policy = AnalyticPolicy()
        before = policy.decide(trace.step(2))
        after = policy.decide(trace.step(20))
        assert after.setting.inlet_temp_c < before.setting.inlet_temp_c

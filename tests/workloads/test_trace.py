"""WorkloadTrace container tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import PhysicalRangeError, TraceFormatError
from repro.workloads.trace import WorkloadTrace


def make_trace(matrix, interval=300.0, name="t"):
    return WorkloadTrace(np.asarray(matrix, dtype=float), interval, name)


class TestValidation:
    def test_one_dimensional_rejected(self):
        with pytest.raises(TraceFormatError):
            make_trace([0.1, 0.2])

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError):
            make_trace(np.empty((0, 5)))

    def test_nan_rejected(self):
        with pytest.raises(TraceFormatError):
            make_trace([[0.1, np.nan]])

    def test_out_of_range_rejected(self):
        with pytest.raises(PhysicalRangeError):
            make_trace([[0.1, 1.2]])
        with pytest.raises(PhysicalRangeError):
            make_trace([[-0.1, 0.5]])

    def test_bad_interval_rejected(self):
        with pytest.raises(PhysicalRangeError):
            make_trace([[0.1, 0.2]], interval=0.0)

    def test_matrix_is_read_only(self):
        trace = make_trace([[0.1, 0.2], [0.3, 0.4]])
        with pytest.raises(ValueError):
            trace.utilisation[0, 0] = 0.9


class TestShape:
    def test_dimensions(self):
        trace = make_trace(np.zeros((6, 4)))
        assert trace.n_steps == 6
        assert trace.n_servers == 4
        assert len(trace) == 6
        assert trace.duration_s == pytest.approx(1800.0)

    def test_times(self):
        trace = make_trace(np.zeros((3, 2)), interval=60.0)
        assert list(trace.times_s) == [0.0, 60.0, 120.0]

    def test_step_and_server_access(self):
        matrix = np.array([[0.1, 0.2], [0.3, 0.4]])
        trace = make_trace(matrix)
        assert list(trace.step(1)) == [0.3, 0.4]
        assert list(trace.server(0)) == [0.1, 0.3]

    def test_repr_mentions_shape(self):
        trace = make_trace(np.zeros((5, 3)), name="demo")
        assert "demo" in repr(trace)
        assert "5" in repr(trace)


class TestAggregations:
    def test_mean_and_max_per_step(self):
        trace = make_trace([[0.2, 0.4], [0.6, 1.0]])
        assert list(trace.mean_per_step()) == [
            pytest.approx(0.3), pytest.approx(0.8)]
        assert list(trace.max_per_step()) == [0.4, 1.0]

    def test_statistics(self):
        trace = make_trace([[0.0, 1.0], [0.5, 0.5]])
        stats = trace.statistics()
        assert stats.mean == pytest.approx(0.5)
        assert stats.max == 1.0
        assert "mean" in stats.describe()

    def test_volatility_of_constant_trace_is_zero(self):
        trace = make_trace(np.full((10, 3), 0.4))
        assert trace.statistics().volatility == 0.0

    def test_single_step_volatility(self):
        trace = make_trace(np.full((1, 3), 0.4))
        assert trace.statistics().volatility == 0.0


class TestTransformations:
    def test_slice_servers(self):
        trace = make_trace(np.arange(12).reshape(3, 4) / 20.0)
        part = trace.slice_servers(1, 3)
        assert part.n_servers == 2
        assert part.utilisation[0, 0] == pytest.approx(1 / 20.0)

    def test_slice_servers_bad_range(self):
        trace = make_trace(np.zeros((3, 4)))
        with pytest.raises(TraceFormatError):
            trace.slice_servers(3, 2)
        with pytest.raises(TraceFormatError):
            trace.slice_servers(0, 9)

    def test_slice_time(self):
        trace = make_trace(np.zeros((10, 2)), interval=300.0)
        window = trace.slice_time(600.0, 1500.0)
        assert window.n_steps == 3

    def test_slice_time_bad_window(self):
        trace = make_trace(np.zeros((10, 2)))
        with pytest.raises(TraceFormatError):
            trace.slice_time(6000.0, 9000.0)

    def test_resample_block_average(self):
        matrix = np.array([[0.2], [0.4], [0.6], [0.8]])
        trace = make_trace(matrix, interval=60.0)
        coarse = trace.resample(120.0)
        assert coarse.n_steps == 2
        assert coarse.utilisation[0, 0] == pytest.approx(0.3)
        assert coarse.interval_s == 120.0

    def test_resample_cannot_refine(self):
        trace = make_trace(np.zeros((4, 1)), interval=300.0)
        with pytest.raises(TraceFormatError):
            trace.resample(60.0)

    def test_resample_too_short(self):
        trace = make_trace(np.zeros((2, 1)), interval=60.0)
        with pytest.raises(TraceFormatError):
            trace.resample(300.0)

    def test_balanced_preserves_work(self):
        matrix = np.array([[0.2, 0.8], [0.0, 0.6]])
        balanced = make_trace(matrix).balanced()
        assert np.allclose(balanced.utilisation.sum(axis=1),
                           matrix.sum(axis=1))
        assert np.allclose(balanced.utilisation[:, 0],
                           balanced.utilisation[:, 1])

    def test_concat_time(self):
        a = make_trace(np.zeros((2, 3)))
        b = make_trace(np.ones((3, 3)) * 0.5)
        joined = a.concat_time(b)
        assert joined.n_steps == 5
        assert joined.utilisation[-1, 0] == 0.5

    def test_concat_mismatched_width_rejected(self):
        a = make_trace(np.zeros((2, 3)))
        b = make_trace(np.zeros((2, 4)))
        with pytest.raises(TraceFormatError):
            a.concat_time(b)

    def test_concat_mismatched_interval_rejected(self):
        a = make_trace(np.zeros((2, 3)), interval=60.0)
        b = make_trace(np.zeros((2, 3)), interval=300.0)
        with pytest.raises(TraceFormatError):
            a.concat_time(b)

    @given(arrays(float, (7, 5), elements=st.floats(min_value=0.0,
                                                    max_value=1.0)))
    def test_balanced_mean_invariant(self, matrix):
        trace = make_trace(matrix)
        balanced = trace.balanced()
        assert np.allclose(balanced.mean_per_step(), trace.mean_per_step())
        # Balancing never raises the per-step maximum.
        assert np.all(balanced.max_per_step()
                      <= trace.max_per_step() + 1e-12)

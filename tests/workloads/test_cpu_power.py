"""Trace-level CPU power (vectorised Eq. 20) tests."""

import numpy as np
import pytest

from repro.errors import PhysicalRangeError
from repro.thermal.cpu_model import cpu_power_w
from repro.workloads.cpu_power import (
    average_power_w,
    power_w,
    trace_energy_kwh,
    trace_power_w,
)
from repro.workloads.trace import WorkloadTrace


@pytest.fixture
def small_trace():
    matrix = np.array([[0.0, 0.5], [1.0, 0.25]])
    return WorkloadTrace(matrix, interval_s=3600.0, name="small")


class TestVectorisedEq20:
    def test_matches_scalar_model(self):
        utils = np.linspace(0.0, 1.0, 11)
        vector = power_w(utils)
        for u, p in zip(utils, vector):
            assert p == pytest.approx(cpu_power_w(float(u)))

    def test_out_of_range_rejected(self):
        with pytest.raises(PhysicalRangeError):
            power_w(np.array([0.5, 1.5]))

    def test_2d_matrix(self, small_trace):
        matrix = trace_power_w(small_trace)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == pytest.approx(cpu_power_w(0.0))
        assert matrix[1, 0] == pytest.approx(cpu_power_w(1.0))


class TestAggregates:
    def test_average_power(self, small_trace):
        expected = np.mean([cpu_power_w(u)
                            for u in (0.0, 0.5, 1.0, 0.25)])
        assert average_power_w(small_trace) == pytest.approx(expected)

    def test_trace_energy(self, small_trace):
        # 2 steps of 1 h each; energy = sum of per-step cluster power.
        step0 = cpu_power_w(0.0) + cpu_power_w(0.5)
        step1 = cpu_power_w(1.0) + cpu_power_w(0.25)
        assert trace_energy_kwh(small_trace) == pytest.approx(
            (step0 + step1) / 1000.0)

    def test_paper_pre_arithmetic(self):
        # A cluster averaging ~29 W/CPU with ~4.18 W generation gives the
        # paper's ~14 % PRE; confirm the power side of that identity.
        matrix = np.full((10, 50), 0.22)
        trace = WorkloadTrace(matrix, 300.0)
        assert average_power_w(trace) == pytest.approx(29.0, abs=1.0)

"""Trace persistence and cluster-table ingestion tests."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.workloads.loader import (
    load_cluster_table,
    load_trace_csv,
    save_trace_csv,
)
from repro.workloads.synthetic import common_trace
from repro.workloads.trace import WorkloadTrace


class TestMatrixCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        trace = common_trace(n_servers=7, duration_s=3600.0, seed=5)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert loaded.name == "common"
        assert loaded.interval_s == trace.interval_s
        assert np.allclose(loaded.utilisation, trace.utilisation, atol=1e-6)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("bogus,300\n0.1,0.2\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_bad_interval_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("interval_s,abc\n0.1,0.2\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_no_rows_rejected(self, tmp_path):
        path = tmp_path / "empty_body.csv"
        path.write_text("interval_s,300\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("interval_s,300\n0.1,0.2\n0.3\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("interval_s,300\n0.1,oops\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_blank_lines_only_body_rejected(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("interval_s,300\n\n\n")
        with pytest.raises(TraceFormatError, match="no data rows"):
            load_trace_csv(path)

    def test_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("interval_s,300\n0.1,0.2\n0.3,oops\n")
        with pytest.raises(TraceFormatError, match=r"text\.csv:3"):
            load_trace_csv(path)

    def test_default_name_from_stem(self, tmp_path):
        trace = WorkloadTrace(np.array([[0.5]]), 300.0, name="x")
        path = tmp_path / "mytrace.csv"
        # Write without a name column by hand.
        path.write_text("interval_s,300\n0.5\n")
        assert load_trace_csv(path).name == "mytrace"
        del trace


class TestClusterTable:
    def write_table(self, tmp_path, rows, header=True):
        path = tmp_path / "cluster.csv"
        lines = ["timestamp,machine,cpu"] if header else []
        lines += [",".join(str(x) for x in row) for row in rows]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_basic_pivot(self, tmp_path):
        path = self.write_table(tmp_path, [
            (0, "m1", 0.2), (0, "m2", 0.4),
            (300, "m1", 0.3), (300, "m2", 0.5),
        ])
        trace = load_cluster_table(path, interval_s=300.0)
        assert trace.n_steps == 2
        assert trace.n_servers == 2
        assert trace.utilisation[1, 1] == pytest.approx(0.5)

    def test_percent_scale_detected(self, tmp_path):
        path = self.write_table(tmp_path, [
            (0, "m1", 20.0), (300, "m1", 45.0),
        ])
        trace = load_cluster_table(path, interval_s=300.0)
        assert trace.utilisation.max() == pytest.approx(0.45)

    def test_over_100_percent_rejected(self, tmp_path):
        path = self.write_table(tmp_path, [(0, "m1", 250.0)])
        with pytest.raises(TraceFormatError):
            load_cluster_table(path)

    def test_bin_averaging(self, tmp_path):
        # Two reports in the same 300 s bin are averaged.
        path = self.write_table(tmp_path, [
            (0, "m1", 0.2), (100, "m1", 0.4), (300, "m1", 0.6),
        ])
        trace = load_cluster_table(path, interval_s=300.0)
        assert trace.utilisation[0, 0] == pytest.approx(0.3)

    def test_forward_fill(self, tmp_path):
        path = self.write_table(tmp_path, [
            (0, "m1", 0.4), (0, "m2", 0.1),
            (600, "m1", 0.6), (600, "m2", 0.2),
        ])
        trace = load_cluster_table(path, interval_s=300.0)
        # The middle bin has no reports: forward-filled.
        assert trace.utilisation[1, 0] == pytest.approx(0.4)

    def test_max_servers_selection(self, tmp_path):
        path = self.write_table(tmp_path, [
            (0, "m1", 0.1), (0, "m2", 0.2), (0, "m3", 0.3),
        ])
        trace = load_cluster_table(path, max_servers=2)
        assert trace.n_servers == 2

    def test_headerless_table(self, tmp_path):
        path = self.write_table(tmp_path, [(0, "m1", 0.5)], header=False)
        trace = load_cluster_table(path)
        assert trace.n_servers == 1

    def test_short_rows_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("0,m1\n")
        with pytest.raises(TraceFormatError):
            load_cluster_table(path)

    def test_empty_table_rejected(self, tmp_path):
        path = tmp_path / "none.csv"
        path.write_text("timestamp,machine,cpu\n")
        with pytest.raises(TraceFormatError):
            load_cluster_table(path)

    def test_fully_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="no data rows"):
            load_cluster_table(path)

    def test_non_numeric_utilisation_rejected(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("timestamp,machine,cpu\n0,m1,busy\n")
        with pytest.raises(TraceFormatError, match=r"text\.csv:2"):
            load_cluster_table(path)

    def test_non_numeric_timestamp_rejected(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("noon,m1,0.5\nlater,m1,0.6\n")
        with pytest.raises(TraceFormatError, match="non-numeric"):
            load_cluster_table(path)

    def test_custom_name(self, tmp_path):
        path = self.write_table(tmp_path, [(0, "m1", 0.5)])
        assert load_cluster_table(path, name="alibaba").name == "alibaba"

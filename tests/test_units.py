"""Unit-conversion helper tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro import units


class TestFlowConversions:
    def test_one_cubic_metre_per_hour(self):
        # 1000 L/H of water is 1 m^3/h = 1000 kg / 3600 s.
        assert units.litres_per_hour_to_kg_per_s(1000.0) == pytest.approx(
            1000.0 / 3600.0)

    def test_prototype_reference_flow(self):
        # The paper's 200 L/H reference flow is ~0.0556 kg/s.
        assert units.litres_per_hour_to_kg_per_s(200.0) == pytest.approx(
            0.05556, rel=1e-3)

    def test_zero_flow(self):
        assert units.litres_per_hour_to_kg_per_s(0.0) == 0.0

    def test_negative_flow_rejected(self):
        with pytest.raises(PhysicalRangeError):
            units.litres_per_hour_to_kg_per_s(-1.0)

    def test_negative_mass_flow_rejected(self):
        with pytest.raises(PhysicalRangeError):
            units.kg_per_s_to_litres_per_hour(-0.1)

    def test_custom_density(self):
        # A coolant 10 % denser carries 10 % more mass at the same flow.
        base = units.litres_per_hour_to_kg_per_s(100.0)
        heavier = units.litres_per_hour_to_kg_per_s(
            100.0, density_kg_per_m3=1100.0)
        assert heavier == pytest.approx(1.1 * base)

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_round_trip(self, flow):
        mass = units.litres_per_hour_to_kg_per_s(flow)
        back = units.kg_per_s_to_litres_per_hour(mass)
        assert math.isclose(back, flow, rel_tol=1e-9, abs_tol=1e-9)


class TestTemperatureConversions:
    def test_zero_celsius(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_natural_water(self):
        assert units.celsius_to_kelvin(20.0) == pytest.approx(293.15)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(PhysicalRangeError):
            units.celsius_to_kelvin(-300.0)

    def test_negative_kelvin_rejected(self):
        with pytest.raises(PhysicalRangeError):
            units.kelvin_to_celsius(-1.0)

    @given(st.floats(min_value=-273.15, max_value=1e4))
    def test_round_trip(self, temp_c):
        back = units.kelvin_to_celsius(units.celsius_to_kelvin(temp_c))
        assert math.isclose(back, temp_c, rel_tol=1e-12, abs_tol=1e-9)


class TestEnergyConversions:
    def test_one_kw_for_one_hour(self):
        assert units.watts_to_kwh(1000.0, 3600.0) == pytest.approx(1.0)

    def test_paper_daily_energy(self):
        # 4.177 W on 100k CPUs for 24 h is the paper's 10,024.8 kWh/day.
        per_cpu = units.watts_to_kwh(4.177, 24 * 3600.0)
        assert per_cpu * 100_000 == pytest.approx(10_024.8, rel=1e-3)

    def test_negative_duration_rejected(self):
        with pytest.raises(PhysicalRangeError):
            units.watts_to_kwh(10.0, -1.0)

    def test_kwh_joule_round_trip(self):
        assert units.joules_to_kwh(units.kwh_to_joules(2.5)) == pytest.approx(
            2.5)

    def test_one_kwh_is_3_6_megajoules(self):
        assert units.kwh_to_joules(1.0) == pytest.approx(3.6e6)

"""Hybrid buffer tests (Sec. VI-B)."""

import numpy as np
import pytest

from repro.errors import PhysicalRangeError
from repro.storage.battery import Battery
from repro.storage.hybrid import HybridEnergyBuffer
from repro.storage.supercap import SuperCapacitor


def fresh_buffer(batt_soc=0.5, sc_soc=0.5):
    return HybridEnergyBuffer(
        battery=Battery(capacity_wh=20.0, soc=batt_soc),
        supercap=SuperCapacitor(capacity_wh=2.0, soc=sc_soc))


class TestStep:
    def test_direct_supply_when_matched(self):
        buffer = fresh_buffer()
        supplied, deficit, curtailed = buffer.step(4.0, 4.0, 300.0)
        assert supplied == pytest.approx(4.0)
        assert deficit == 0.0
        assert curtailed == 0.0

    def test_surplus_charges_storage(self):
        buffer = fresh_buffer(batt_soc=0.0, sc_soc=0.0)
        buffer.step(6.0, 4.0, 300.0)
        assert buffer.supercap.stored_wh > 0.0

    def test_supercap_charged_first(self):
        buffer = fresh_buffer(batt_soc=0.0, sc_soc=0.0)
        buffer.step(5.0, 4.0, 300.0)
        # 1 W surplus for 5 min is 0.083 Wh — all within SC headroom.
        assert buffer.supercap.stored_wh > 0.0
        assert buffer.battery.stored_wh == 0.0

    def test_shortfall_served_from_storage(self):
        buffer = fresh_buffer(batt_soc=1.0, sc_soc=1.0)
        supplied, deficit, _ = buffer.step(2.0, 5.0, 300.0)
        assert supplied == pytest.approx(5.0)
        assert deficit == 0.0

    def test_deficit_when_storage_empty(self):
        buffer = fresh_buffer(batt_soc=0.0, sc_soc=0.0)
        supplied, deficit, _ = buffer.step(2.0, 5.0, 300.0)
        assert supplied == pytest.approx(2.0)
        assert deficit == pytest.approx(3.0)

    def test_curtailment_when_storage_full(self):
        buffer = fresh_buffer(batt_soc=1.0, sc_soc=1.0)
        _, _, curtailed = buffer.step(10.0, 4.0, 300.0)
        assert curtailed == pytest.approx(6.0)

    def test_validation(self):
        buffer = fresh_buffer()
        with pytest.raises(PhysicalRangeError):
            buffer.step(-1.0, 4.0, 300.0)
        with pytest.raises(PhysicalRangeError):
            buffer.step(4.0, 4.0, 0.0)


class TestSmooth:
    def test_full_coverage_when_generation_ample(self):
        buffer = fresh_buffer()
        gen = 4.0 + np.sin(np.linspace(0.0, 12.0, 100))
        telemetry = buffer.smooth(gen, demand_w=3.5, interval_s=300.0)
        assert telemetry.coverage > 0.99

    def test_deficit_when_underpowered(self):
        buffer = fresh_buffer(batt_soc=0.1, sc_soc=0.1)
        gen = np.full(50, 2.0)
        telemetry = buffer.smooth(gen, demand_w=5.0, interval_s=300.0)
        assert telemetry.coverage < 0.75
        assert telemetry.deficit_w.sum() > 0.0

    def test_buffer_rides_through_dips(self):
        # The Sec. VI-B scenario: high generation at night, low at peak
        # hours; the buffer carries a constant load through the dip.
        buffer = fresh_buffer(batt_soc=0.8)
        gen = np.concatenate([np.full(20, 4.6), np.full(6, 3.2),
                              np.full(20, 4.6)])
        telemetry = buffer.smooth(gen, demand_w=4.2, interval_s=300.0)
        assert telemetry.coverage == pytest.approx(1.0)

    def test_telemetry_shapes(self):
        buffer = fresh_buffer()
        telemetry = buffer.smooth(np.full(10, 4.0), 4.0, 300.0)
        assert telemetry.times_s.shape == (10,)
        assert telemetry.battery_soc.shape == (10,)
        assert telemetry.supercap_soc.shape == (10,)

    def test_empty_profile_rejected(self):
        with pytest.raises(PhysicalRangeError):
            fresh_buffer().smooth(np.array([]), 4.0, 300.0)

    def test_curtailment_fraction_zero_without_surplus(self):
        buffer = fresh_buffer()
        telemetry = buffer.smooth(np.full(5, 4.0), 4.0, 300.0)
        assert telemetry.curtailment_fraction == 0.0

"""Super-capacitor storage tests."""

import pytest

from repro.errors import PhysicalRangeError
from repro.storage.supercap import SuperCapacitor


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(PhysicalRangeError):
            SuperCapacitor(capacity_wh=0.0)
        with pytest.raises(PhysicalRangeError):
            SuperCapacitor(round_trip_efficiency=0.0)
        with pytest.raises(PhysicalRangeError):
            SuperCapacitor(soc=-0.1)

    def test_negative_power_rejected(self):
        sc = SuperCapacitor()
        with pytest.raises(PhysicalRangeError):
            sc.charge(-1.0, 10.0)
        with pytest.raises(PhysicalRangeError):
            sc.discharge(1.0, -10.0)


class TestBehaviour:
    def test_more_efficient_than_battery_default(self):
        from repro.storage.battery import Battery

        assert SuperCapacitor().round_trip_efficiency > \
            Battery().round_trip_efficiency

    def test_small_capacity_by_default(self):
        from repro.storage.battery import Battery

        assert SuperCapacitor().capacity_wh < Battery().capacity_wh

    def test_charge_and_discharge(self):
        sc = SuperCapacitor(capacity_wh=2.0, soc=0.0)
        sc.charge(4.0, 900.0)  # 1 Wh in
        assert sc.stored_wh == pytest.approx(
            1.0 * 0.93 ** 0.5, rel=1e-6)
        delivered = sc.discharge(1.0, 900.0)
        assert 0.0 < delivered <= 1.0

    def test_headroom_respected(self):
        sc = SuperCapacitor(capacity_wh=1.0, soc=0.9)
        sc.charge(100.0, 3600.0)
        assert sc.soc == pytest.approx(1.0)

    def test_empty_limits_delivery(self):
        sc = SuperCapacitor(capacity_wh=1.0, soc=0.05)
        delivered = sc.discharge(100.0, 3600.0)
        assert delivered < 100.0
        assert sc.soc == pytest.approx(0.0, abs=1e-9)

    def test_headroom_property(self):
        sc = SuperCapacitor(capacity_wh=2.0, soc=0.25)
        assert sc.headroom_wh == pytest.approx(1.5)

"""Battery storage tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.storage.battery import Battery


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(PhysicalRangeError):
            Battery(capacity_wh=0.0)
        with pytest.raises(PhysicalRangeError):
            Battery(round_trip_efficiency=1.5)
        with pytest.raises(PhysicalRangeError):
            Battery(soc=1.2)
        with pytest.raises(PhysicalRangeError):
            Battery(max_charge_w=0.0)

    def test_negative_power_rejected(self):
        battery = Battery()
        with pytest.raises(PhysicalRangeError):
            battery.charge(-1.0, 60.0)
        with pytest.raises(PhysicalRangeError):
            battery.discharge(5.0, -1.0)


class TestCharging:
    def test_soc_rises(self):
        battery = Battery(capacity_wh=10.0, soc=0.0)
        battery.charge(10.0, 3600.0)
        assert battery.soc > 0.8  # ~10 Wh * sqrt(0.8) into 10 Wh

    def test_charge_losses_applied(self):
        battery = Battery(capacity_wh=100.0, soc=0.0,
                          round_trip_efficiency=0.81)
        battery.charge(10.0, 3600.0)
        # 10 Wh in, one-way efficiency 0.9 -> 9 Wh stored.
        assert battery.stored_wh == pytest.approx(9.0)

    def test_power_limit(self):
        battery = Battery(max_charge_w=50.0, capacity_wh=1000.0, soc=0.0)
        accepted = battery.charge(200.0, 60.0)
        assert accepted == 50.0

    def test_headroom_limit(self):
        battery = Battery(capacity_wh=1.0, soc=0.99, max_charge_w=1000.0)
        accepted = battery.charge(1000.0, 3600.0)
        assert battery.soc == pytest.approx(1.0)
        assert accepted < 1000.0


class TestDischarging:
    def test_soc_falls(self):
        battery = Battery(capacity_wh=10.0, soc=1.0)
        battery.discharge(5.0, 3600.0)
        assert battery.soc < 0.5

    def test_discharge_losses_applied(self):
        battery = Battery(capacity_wh=100.0, soc=1.0,
                          round_trip_efficiency=0.81)
        battery.discharge(9.0, 3600.0)
        # Delivering 9 Wh at one-way 0.9 drains 10 Wh.
        assert battery.stored_wh == pytest.approx(90.0)

    def test_empty_battery_delivers_less(self):
        battery = Battery(capacity_wh=1.0, soc=0.01,
                          max_discharge_w=1000.0)
        delivered = battery.discharge(1000.0, 3600.0)
        assert delivered < 1000.0
        assert battery.soc == pytest.approx(0.0, abs=1e-9)


class TestRoundTrip:
    @given(st.floats(min_value=0.5, max_value=0.99))
    def test_round_trip_efficiency_realised(self, efficiency):
        battery = Battery(capacity_wh=1000.0, soc=0.0,
                          round_trip_efficiency=efficiency,
                          max_charge_w=10.0, max_discharge_w=10.0)
        battery.charge(10.0, 3600.0)  # 10 Wh in
        stored = battery.stored_wh
        delivered = battery.discharge(10.0, 3600.0 * stored / 10.0)
        duration_h = stored / 10.0
        energy_out = delivered * duration_h
        assert energy_out == pytest.approx(10.0 * efficiency, rel=0.05)

    def test_soc_always_bounded(self):
        battery = Battery(capacity_wh=5.0, soc=0.5)
        for _ in range(20):
            battery.charge(100.0, 600.0)
        assert battery.soc <= 1.0 + 1e-9
        for _ in range(40):
            battery.discharge(100.0, 600.0)
        assert battery.soc >= -1e-9

    def test_cycle_depth_tracked(self):
        battery = Battery(capacity_wh=100.0, soc=0.5)
        assert battery.cycle_depth_wh == 0.0
        battery.charge(10.0, 3600.0)
        battery.discharge(10.0, 1800.0)
        assert battery.cycle_depth_wh > 0.0

"""Shared fixtures for the H2P reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.lookup_space import LookupSpace
from repro.teg.module import default_server_module
from repro.thermal.cpu_model import CoolingSetting, CpuThermalModel
from repro.workloads.synthetic import (
    common_trace,
    drastic_trace,
    irregular_trace,
)


@pytest.fixture(scope="session")
def cpu_model() -> CpuThermalModel:
    """The paper-calibrated CPU thermal model."""
    return CpuThermalModel()


@pytest.fixture(scope="session")
def teg_module():
    """The 12-TEG per-server module of the prototype."""
    return default_server_module()


@pytest.fixture
def warm_setting() -> CoolingSetting:
    """A representative warm-water cooling setting."""
    return CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=45.0)


@pytest.fixture(scope="session")
def lookup_space() -> LookupSpace:
    """A shared (expensive-to-build) measurement space."""
    return LookupSpace()


@pytest.fixture(scope="session")
def tiny_traces() -> dict:
    """Small instances of the three paper trace classes (fast tests)."""
    kwargs = dict(n_servers=40, duration_s=4 * 3600.0, interval_s=300.0)
    return {
        "drastic": drastic_trace(seed=10, **kwargs),
        "irregular": irregular_trace(seed=11, **kwargs),
        "common": common_trace(seed=12, **kwargs),
    }


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(1234)

"""End-to-end reproduction tests for the paper's headline claims.

Each test here corresponds to a specific quantitative statement in the
paper.  Absolute targets use generous bands (our substrate is a simulator,
not the authors' testbed); *orderings* and *signs* are asserted strictly.

These tests run the full pipeline on reduced cluster sizes to stay fast;
the benchmarks regenerate the full-scale numbers.
"""

import numpy as np
import pytest

import repro
from repro.core.config import teg_loadbalance, teg_original
from repro.economics.breakeven import BreakEvenAnalysis
from repro.economics.tco import TcoModel


@pytest.fixture(scope="module")
def comparisons():
    """Original-vs-LoadBalance on all three traces (shared, ~30 s)."""
    system = repro.H2PSystem()
    result = {}
    for name in ("drastic", "irregular", "common"):
        trace = repro.trace_by_name(name, n_servers=200)
        result[name] = system.compare(trace)
    return result


class TestFig14Generation:
    """Fig. 14: per-CPU generation under 3 traces x 2 schemes."""

    def test_loadbalance_wins_on_every_trace(self, comparisons):
        for name, comparison in comparisons.items():
            assert comparison.generation_improvement > 0.0, name

    def test_average_generation_magnitudes(self, comparisons):
        # Paper: Original 3.694 W and LoadBalance 4.177 W on average.
        orig = np.mean([c.baseline.average_generation_w
                        for c in comparisons.values()])
        balance = np.mean([c.optimised.average_generation_w
                           for c in comparisons.values()])
        assert orig == pytest.approx(3.694, abs=0.5)
        assert balance == pytest.approx(4.177, abs=0.5)

    def test_improvement_factor(self, comparisons):
        # Paper: ~13.08 % improvement overall.
        orig = np.mean([c.baseline.average_generation_w
                        for c in comparisons.values()])
        balance = np.mean([c.optimised.average_generation_w
                           for c in comparisons.values()])
        improvement = (balance - orig) / orig
        assert 0.05 < improvement < 0.30

    def test_high_utilisation_low_generation(self, comparisons):
        # The paper's Fig. 14a observation, asserted as a negative
        # utilisation-generation correlation under both schemes.
        for name, comparison in comparisons.items():
            assert comparison.baseline.anti_correlation < 0.0, name
            assert comparison.optimised.anti_correlation < 0.0, name

    def test_peaks_exceed_averages(self, comparisons):
        for comparison in comparisons.values():
            assert comparison.optimised.peak_generation_w > \
                comparison.optimised.average_generation_w

    def test_no_safety_violations(self, comparisons):
        # The whole point of keying on T_safe = 62 C << 78.9 C.
        for comparison in comparisons.values():
            assert comparison.baseline.total_safety_violations == 0
            assert comparison.optimised.total_safety_violations == 0


class TestFig15Pre:
    """Fig. 15: PRE bands."""

    def test_pre_band(self, comparisons):
        # Paper: LoadBalance PRE 12.8-16.2 %; allow a widened band.
        for name, comparison in comparisons.items():
            assert 0.10 < comparison.optimised.average_pre < 0.20, name

    def test_loadbalance_pre_beats_original(self, comparisons):
        for name, comparison in comparisons.items():
            assert comparison.optimised.average_pre > \
                comparison.baseline.average_pre, name

    def test_average_pre_near_paper(self, comparisons):
        avg = np.mean([c.optimised.average_pre
                       for c in comparisons.values()])
        assert avg == pytest.approx(0.1423, abs=0.035)


class TestTcoAndBreakEven:
    """Sec. V-D headline economics."""

    def test_tco_reductions(self):
        model = TcoModel()
        assert model.breakdown(3.694).reduction_fraction == pytest.approx(
            0.0049, abs=0.0003)
        assert model.breakdown(4.177).reduction_fraction == pytest.approx(
            0.0057, abs=0.0003)

    def test_break_even_920_days(self):
        assert BreakEvenAnalysis().break_even_days(4.177) == pytest.approx(
            920.0, abs=5.0)

    def test_end_to_end_tco_from_simulation(self, comparisons):
        # Feed the *measured* generation into the TCO model: the
        # reduction must stay in the paper's ~0.5 % regime.
        balance = np.mean([c.optimised.average_generation_w
                           for c in comparisons.values()])
        breakdown = repro.H2PSystem().tco(balance)
        assert 0.003 < breakdown.reduction_fraction < 0.009


class TestFig3Placement:
    """Sec. III-B: why TEGs cannot sit under the CPU."""

    def test_sandwich_overheats_direct_does_not(self):
        from repro.teg.placement import PlacementStudy

        outcome = PlacementStudy().run()
        assert outcome.sandwiched_near_limit
        assert outcome.peak_direct_cpu_c < 50.0


class TestSchemeDefinitions:
    """The two schemes match the paper's definitions."""

    def test_original_is_max_keyed_unscheduled(self):
        config = teg_original()
        assert config.scheduler == "none"
        assert config.build_scheduler().policy_aggregation == "max"

    def test_loadbalance_is_avg_keyed_balanced(self):
        config = teg_loadbalance()
        assert config.scheduler == "ideal"
        assert config.build_scheduler().policy_aggregation == "avg"

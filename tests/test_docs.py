"""Documentation-consistency tests.

DESIGN.md and EXPERIMENTS.md promise specific benchmark files, modules
and experiment ids; these tests keep the promises honest as the code
evolves.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestDesignDoc:
    def test_exists(self):
        assert (REPO / "DESIGN.md").exists()

    def test_every_referenced_benchmark_exists(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/([\w.]+\.py)", text):
            assert (REPO / "benchmarks" / match.group(1)).exists(), \
                match.group(0)

    def test_every_benchmark_is_indexed(self):
        text = read("DESIGN.md")
        for path in (REPO / "benchmarks").glob("test_bench_*.py"):
            assert path.name in text, (
                f"{path.name} is not referenced in DESIGN.md")

    def test_every_referenced_module_importable(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"`(repro(?:\.\w+)+)`", text):
            module_name = match.group(1)
            importlib.import_module(module_name)

    def test_paper_confirmation_present(self):
        # The mandated title-collision check.
        assert "matches the target title" in read("DESIGN.md")


class TestExperimentsDoc:
    def test_exists(self):
        assert (REPO / "EXPERIMENTS.md").exists()

    def test_covers_every_evaluation_figure_and_table(self):
        text = read("EXPERIMENTS.md")
        for artefact in ("Fig. 3", "Fig. 7", "Fig. 8", "Fig. 9",
                         "Fig. 10", "Fig. 11", "Fig. 12/13", "Fig. 14",
                         "Fig. 15", "Table I", "Sec. V-A"):
            assert artefact in text, artefact

    def test_referenced_benchmarks_exist(self):
        text = read("EXPERIMENTS.md")
        for match in re.finditer(r"`(test_bench_[\w.]+\.py)`", text):
            assert (REPO / "benchmarks" / match.group(1)).exists(), \
                match.group(0)

    def test_known_deviations_documented(self):
        assert "Known deviations" in read("EXPERIMENTS.md")


class TestReadme:
    def test_quickstart_code_runs(self):
        # The README's quickstart snippet must actually work.
        import repro

        system = repro.H2PSystem()
        setting = repro.CoolingSetting(flow_l_per_h=150.0,
                                       inlet_temp_c=52.0)
        watts = system.server_generation_w(0.25, setting)
        assert 3.0 < watts < 5.0
        assert system.is_safe(1.0, repro.CoolingSetting(
            flow_l_per_h=150.0, inlet_temp_c=45.0))

    def test_examples_listed_and_present(self):
        text = read("README.md")
        for match in re.finditer(r"examples/(\w+\.py)", text):
            assert (REPO / "examples" / match.group(1)).exists(), \
                match.group(0)

    def test_docs_folder_promises(self):
        text = read("README.md")
        assert (REPO / "docs" / "calibration.md").exists()
        assert (REPO / "docs" / "architecture.md").exists()
        assert "calibration.md" in text


class TestRegistryDocAlignment:
    def test_design_ids_match_registry(self):
        # Every E-F*/E-T*/E-VA id in DESIGN.md's experiment index that
        # the registry claims to cover must resolve.
        from repro.experiments import list_experiments

        registered = {experiment_id
                      for experiment_id, _ in list_experiments()}
        text = read("DESIGN.md")
        indexed = set(re.findall(r"\| (E-(?:F\d+|T1|VA|BATCH|FAULTS))[ /]",
                                 text))
        assert registered <= indexed | {"E-F13"}, (
            registered - indexed)


class TestExamplesHaveDocstrings:
    @pytest.mark.parametrize("path", sorted(
        (REPO / "examples").glob("*.py")))
    def test_example_documented(self, path):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name
        assert "Run:" in source or "python examples/" in source, \
            path.name

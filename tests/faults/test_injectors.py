"""FaultRuntime behaviour: what each injector does and determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FaultInjectionError
from repro.faults import (
    FAULT_KINDS,
    FaultRuntime,
    FaultSchedule,
    FaultSpec,
    STALL_FLOW_L_PER_H,
    plausible_readings,
)
from repro.thermal.cpu_model import CoolingSetting

pytestmark = pytest.mark.faults


def runtime(*specs, seed=0, n_servers=20, n_circulations=2):
    return FaultRuntime(FaultSchedule(specs=tuple(specs), seed=seed),
                        n_servers, n_circulations)


class TestPlausibility:
    def test_healthy_readings_plausible(self):
        assert plausible_readings(np.linspace(0.0, 1.0, 8))

    def test_small_noise_excursion_still_plausible(self):
        assert plausible_readings(np.array([-0.04, 1.04]))

    @pytest.mark.parametrize("bad", [
        np.array([1.2, 0.5]),
        np.array([-0.2, 0.5]),
        np.array([np.nan, 0.5]),
        np.array([np.inf, 0.5]),
        np.array([]),
    ])
    def test_implausible_readings(self, bad):
        assert not plausible_readings(bad)


class TestRuntimeValidation:
    def test_out_of_cluster_circulation_rejected(self):
        with pytest.raises(FaultInjectionError, match="circulation 5"):
            runtime(FaultSpec(kind="pump_stall", circulation=5))

    def test_non_schedule_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultRuntime([], 10, 1)


class TestSensorFaults:
    def test_no_faults_returns_true_values(self):
        rt = runtime()
        scheduled = np.linspace(0.0, 1.0, 20)
        readings = rt.sense(scheduled, 0, 0, 0.0)
        np.testing.assert_array_equal(readings, scheduled)
        assert readings is not scheduled

    def test_stuck_sensor_freezes_all_readings(self):
        rt = runtime(FaultSpec(kind="sensor_stuck", magnitude=0.42))
        readings = rt.sense(np.linspace(0, 1, 20), 3, 0, 0.0)
        np.testing.assert_array_equal(readings, np.full(20, 0.42))

    def test_bias_shifts_readings(self):
        rt = runtime(FaultSpec(kind="sensor_bias", magnitude=0.1))
        scheduled = np.full(20, 0.5)
        np.testing.assert_allclose(rt.sense(scheduled, 0, 0, 0.0),
                                   scheduled + 0.1)

    def test_noise_varies_by_step_but_not_by_call(self):
        rt = runtime(FaultSpec(kind="sensor_noise", magnitude=0.2))
        scheduled = np.full(20, 0.5)
        first = rt.sense(scheduled, 0, 0, 0.0)
        again = rt.sense(scheduled, 0, 0, 0.0)
        other_step = rt.sense(scheduled, 1, 0, 300.0)
        np.testing.assert_array_equal(first, again)
        assert not np.array_equal(first, other_step)

    def test_circulation_target_respected(self):
        rt = runtime(FaultSpec(kind="sensor_stuck", magnitude=0.9,
                               circulation=1))
        scheduled = np.full(10, 0.2)
        np.testing.assert_array_equal(rt.sense(scheduled, 0, 0, 0.0),
                                      scheduled)
        np.testing.assert_array_equal(rt.sense(scheduled, 0, 1, 0.0),
                                      np.full(10, 0.9))


class TestPumpFaults:
    def test_derate_scales_flow(self):
        rt = runtime(FaultSpec(kind="pump_derate", magnitude=0.5))
        setting = CoolingSetting(flow_l_per_h=200.0, inlet_temp_c=45.0)
        applied = rt.apply_pump(setting, 0.0, 0)
        assert applied.flow_l_per_h == pytest.approx(100.0)
        assert applied.inlet_temp_c == 45.0

    def test_stall_collapses_flow_to_trickle(self):
        rt = runtime(FaultSpec(kind="pump_stall"))
        setting = CoolingSetting(flow_l_per_h=300.0, inlet_temp_c=45.0)
        assert rt.apply_pump(setting, 0.0, 0).flow_l_per_h == \
            STALL_FLOW_L_PER_H
        assert rt.pump_stalled(0.0, 0)

    def test_inactive_window_leaves_setting_untouched(self):
        rt = runtime(FaultSpec(kind="pump_stall", start_s=1000.0))
        setting = CoolingSetting(flow_l_per_h=300.0, inlet_temp_c=45.0)
        assert rt.apply_pump(setting, 0.0, 0) is setting
        assert not rt.pump_stalled(0.0, 0)


class TestTegAndChillerFaults:
    def test_open_circuit_zeroes_a_fraction(self):
        rt = runtime(FaultSpec(kind="teg_open_circuit", magnitude=0.5),
                     n_servers=400, n_circulations=1)
        factor = rt.teg_output_factor(0.0, 0, np.arange(400))
        assert set(np.unique(factor)) <= {0.0, 1.0}
        broken = float(np.mean(factor == 0.0))
        assert 0.3 < broken < 0.7

    def test_degradation_ages_with_elapsed_time(self):
        rt = runtime(FaultSpec(kind="teg_degradation", magnitude=10.0))
        early = rt.teg_output_factor(0.0, 0, np.arange(20))
        late = rt.teg_output_factor(36000.0, 0, np.arange(20))
        assert early == pytest.approx(1.0)
        assert np.all(np.asarray(late) < 1.0)

    def test_chiller_excursion_warms_cold_side(self):
        rt = runtime(FaultSpec(kind="chiller_excursion", magnitude=6.0))
        assert rt.cold_source_temp_c(25.0, 0.0, 0) == pytest.approx(31.0)
        assert rt.cold_source_temp_c(25.0, -1.0, 0) == pytest.approx(25.0)

    def test_active_count(self):
        rt = runtime(FaultSpec(kind="pump_stall", start_s=100.0),
                     FaultSpec(kind="sensor_bias", magnitude=0.1))
        assert rt.active_count(0.0) == 1
        assert rt.active_count(200.0) == 2


spec_strategy = st.builds(
    FaultSpec,
    kind=st.sampled_from(FAULT_KINDS),
    start_s=st.floats(min_value=0.0, max_value=3600.0),
    duration_s=st.floats(min_value=60.0, max_value=7200.0),
    magnitude=st.floats(min_value=0.0, max_value=1.0),
    circulation=st.one_of(st.none(), st.integers(0, 1)),
)


class TestSeededReproducibility:
    """Same (schedule, seed) => identical injected series, always."""

    @given(specs=st.lists(spec_strategy, min_size=1, max_size=3),
           seed=st.integers(0, 2**31 - 1),
           step=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_two_runtimes_agree_everywhere(self, specs, seed, step):
        schedule = FaultSchedule(specs=tuple(specs), seed=seed)
        a = FaultRuntime(schedule, 16, 2)
        b = FaultRuntime(schedule, 16, 2)
        scheduled = np.linspace(0.1, 0.9, 16)
        time_s = step * 300.0
        setting = CoolingSetting(flow_l_per_h=150.0, inlet_temp_c=46.0)
        for circ in (0, 1):
            np.testing.assert_array_equal(
                a.sense(scheduled, step, circ, time_s),
                b.sense(scheduled, step, circ, time_s))
            assert a.apply_pump(setting, time_s, circ) == \
                b.apply_pump(setting, time_s, circ)
            np.testing.assert_array_equal(
                np.asarray(a.teg_output_factor(time_s, circ,
                                               np.arange(16))),
                np.asarray(b.teg_output_factor(time_s, circ,
                                               np.arange(16))))
            assert a.cold_source_temp_c(25.0, time_s, circ) == \
                b.cold_source_temp_c(25.0, time_s, circ)

    @given(seed_a=st.integers(0, 1000), seed_b=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_noise_differs_across_seeds(self, seed_a, seed_b):
        spec = FaultSpec(kind="sensor_noise", magnitude=0.3)
        a = runtime(spec, seed=seed_a)
        b = runtime(spec, seed=seed_b)
        scheduled = np.full(20, 0.5)
        same = np.array_equal(a.sense(scheduled, 0, 0, 0.0),
                              b.sense(scheduled, 0, 0, 0.0))
        assert same == (seed_a == seed_b)

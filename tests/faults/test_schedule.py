"""FaultSpec/FaultSchedule validation, windows and JSON round-trips."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FaultInjectionError
from repro.faults import FAULT_KINDS, FaultSchedule, FaultSpec

pytestmark = pytest.mark.faults


class TestFaultSpecValidation:
    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            spec = FaultSpec(kind=kind, magnitude=0.1)
            assert spec.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    @pytest.mark.parametrize("kwargs", [
        dict(kind="pump_derate", start_s=-1.0),
        dict(kind="pump_derate", duration_s=0.0),
        dict(kind="pump_derate", duration_s=-5.0),
    ])
    def test_bad_window_rejected(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FaultSpec(**kwargs)

    @pytest.mark.parametrize("kind,magnitude", [
        ("teg_open_circuit", 1.5),
        ("teg_open_circuit", -0.1),
        ("pump_derate", 2.0),
        ("sensor_noise", -0.2),
        ("teg_degradation", -1.0),
    ])
    def test_out_of_range_magnitude_rejected(self, kind, magnitude):
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind=kind, magnitude=magnitude)

    def test_negative_circulation_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind="pump_stall", circulation=-1)

    def test_window_membership(self):
        spec = FaultSpec(kind="pump_stall", start_s=100.0,
                         duration_s=50.0)
        assert not spec.active_at(99.9)
        assert spec.active_at(100.0)
        assert spec.active_at(149.9)
        assert not spec.active_at(150.0)

    def test_default_window_is_forever(self):
        spec = FaultSpec(kind="sensor_bias", magnitude=0.1)
        assert spec.active_at(0.0)
        assert spec.active_at(1e12)
        assert math.isinf(spec.duration_s)

    def test_targets(self):
        everywhere = FaultSpec(kind="pump_stall")
        only_two = FaultSpec(kind="pump_stall", circulation=2)
        assert everywhere.targets(0) and everywhere.targets(7)
        assert only_two.targets(2) and not only_two.targets(1)


class TestScheduleSerialisation:
    def schedule(self):
        return FaultSchedule(specs=(
            FaultSpec(kind="sensor_noise", magnitude=0.1),
            FaultSpec(kind="pump_stall", start_s=600.0,
                      duration_s=1200.0, circulation=1),
            FaultSpec(kind="teg_degradation", magnitude=2.0),
        ), seed=13)

    def test_round_trip_dict(self):
        schedule = self.schedule()
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_round_trip_json_file(self, tmp_path):
        schedule = self.schedule()
        path = tmp_path / "faults.json"
        schedule.to_json(path)
        assert FaultSchedule.from_json(path) == schedule

    def test_round_trip_json_string(self):
        schedule = self.schedule()
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_unknown_schedule_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown"):
            FaultSchedule.from_dict({"seed": 0, "specs": []})

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.from_dict(
                {"faults": [{"kind": "pump_stall", "severity": 2}]})

    def test_invalid_json_text_rejected(self):
        with pytest.raises(FaultInjectionError, match="not valid JSON"):
            FaultSchedule.from_json("{nope")

    def test_active_returns_indexed_specs(self):
        schedule = self.schedule()
        active = schedule.active(700.0)
        assert [index for index, _ in active] == [0, 1, 2]
        assert schedule.active(2000.0) == [
            (0, schedule.specs[0]), (2, schedule.specs[2])]


spec_strategy = st.builds(
    FaultSpec,
    kind=st.sampled_from(FAULT_KINDS),
    start_s=st.floats(min_value=0.0, max_value=7200.0),
    duration_s=st.floats(min_value=1.0, max_value=7200.0),
    magnitude=st.floats(min_value=0.0, max_value=1.0),
    circulation=st.one_of(st.none(), st.integers(0, 2)),
)


class TestScheduleProperties:
    @given(specs=st.lists(spec_strategy, max_size=4),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip_is_lossless(self, specs, seed):
        schedule = FaultSchedule(specs=tuple(specs), seed=seed)
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

"""Fault injection through the full simulator: degradation and accounting."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig, teg_original
from repro.core.engine import simulate
from repro.core.simulator import DatacenterSimulator
from repro.errors import CoolingFailureError
from repro.faults import FaultSchedule, FaultSpec
from repro.workloads.synthetic import common_trace

pytestmark = pytest.mark.faults

TRACE_KWARGS = dict(n_servers=40, duration_s=4 * 3600.0,
                    interval_s=300.0, seed=12)


def trace():
    return common_trace(**TRACE_KWARGS)


def run(schedule, config=None, **config_overrides):
    config = config or teg_original(**config_overrides)
    return DatacenterSimulator(trace(), config, faults=schedule).run()


class TestNominalEquivalence:
    def test_none_schedule_matches_no_schedule(self):
        assert run(None) == DatacenterSimulator(trace(),
                                                teg_original()).run()

    def test_empty_schedule_is_bit_identical_to_nominal(self):
        nominal = run(None)
        empty = run(FaultSchedule())
        assert empty == nominal
        assert empty.degraded_steps == 0
        assert empty.total_lost_harvest_kwh == 0.0

    def test_engine_fast_path_unchanged_with_faults_disabled(self):
        nominal = DatacenterSimulator(trace(), teg_original()).run()
        engine = simulate(trace(), teg_original(), faults=None)
        assert engine == nominal
        assert engine.metrics.vectorised


class TestDegradedMode:
    def test_pump_stall_degrades_only_its_window(self):
        stall = FaultSchedule(specs=(
            FaultSpec(kind="pump_stall", start_s=3600.0,
                      duration_s=3600.0),), seed=3)
        result = run(stall)
        flags = np.array([record.degraded_circulations
                          for record in result.records])
        times = result.times_s
        inside = (times >= 3600.0) & (times < 7200.0)
        assert np.all(flags[inside] > 0)
        assert np.all(flags[~inside] == 0)

    def test_implausible_sensor_triggers_conservative_fallback(self):
        # A stuck-at value far outside [0, 1] is implausible, so every
        # step degrades instead of feeding garbage to the policy.
        stuck = FaultSchedule(specs=(
            FaultSpec(kind="sensor_stuck", magnitude=9.0),), seed=3)
        result = run(stuck)
        assert result.degraded_steps == len(result.records)

    def test_small_noise_is_clipped_not_degraded(self):
        noisy = FaultSchedule(specs=(
            FaultSpec(kind="sensor_noise", magnitude=0.01),), seed=3)
        result = run(noisy)
        assert result.degraded_steps == 0

    def test_lost_harvest_is_positive_under_open_circuit(self):
        broken = FaultSchedule(specs=(
            FaultSpec(kind="teg_open_circuit", magnitude=0.5),), seed=3)
        nominal = run(None)
        result = run(broken)
        assert result.total_lost_harvest_kwh > 0.0
        assert result.average_generation_w < nominal.average_generation_w

    def test_active_fault_count_recorded(self):
        schedule = FaultSchedule(specs=(
            FaultSpec(kind="sensor_bias", magnitude=0.02),
            FaultSpec(kind="chiller_excursion", magnitude=4.0,
                      start_s=7200.0),), seed=3)
        result = run(schedule)
        assert result.records[0].active_faults == 1
        assert result.records[-1].active_faults == 2

    def test_summary_includes_degraded_keys_only_when_faulted(self):
        assert "degraded_steps" not in run(None).summary()
        stall = FaultSchedule(specs=(FaultSpec(kind="pump_stall"),),
                              seed=3)
        summary = run(stall).summary()
        assert summary["degraded_steps"] > 0
        assert summary["lost_harvest_kwh"] >= 0.0


class TestFaultedDeterminism:
    def schedule(self, seed):
        return FaultSchedule(specs=(
            FaultSpec(kind="sensor_noise", magnitude=0.15),
            FaultSpec(kind="teg_open_circuit", magnitude=0.3),
            FaultSpec(kind="pump_derate", magnitude=0.4,
                      start_s=3600.0),), seed=seed)

    def test_same_seed_is_bit_identical(self):
        assert run(self.schedule(7)) == run(self.schedule(7))

    def test_different_seed_differs(self):
        assert run(self.schedule(7)) != run(self.schedule(8))

    def test_engine_faulted_path_matches_serial(self):
        schedule = self.schedule(7)
        serial = run(schedule)
        engine = simulate(trace(), teg_original(), faults=schedule)
        assert engine == serial
        assert not engine.metrics.vectorised  # fault path is serial


class TestSafetyViolationRecords:
    def unsafe_config(self, **overrides):
        from repro.thermal.cpu_model import CoolingSetting

        # An aggressive static setting at full load trips the CPU limit.
        return SimulationConfig(
            name="unsafe", policy="static",
            static_setting=CoolingSetting(flow_l_per_h=20.0,
                                          inlet_temp_c=58.0),
            **overrides)

    def hot_trace(self):
        utils = np.full((6, 40), 1.0)
        base = trace()
        return type(base)(name="hot", interval_s=300.0,
                          utilisation=utils)

    def test_non_strict_records_every_violation(self):
        result = DatacenterSimulator(self.hot_trace(),
                                     self.unsafe_config()).run()
        assert result.total_safety_violations > 0
        assert len(result.violations) == result.total_safety_violations
        first = result.violations[0]
        assert 0 <= first.server_id < 40
        assert first.step_index == 0
        assert first.time_s == 0.0
        assert first.temperature_c > 0.0

    def test_strict_raises_with_step_index(self):
        config = self.unsafe_config(strict_safety=True)
        with pytest.raises(CoolingFailureError) as excinfo:
            DatacenterSimulator(self.hot_trace(), config).run()
        error = excinfo.value
        assert error.step_index == 0
        assert error.server_id is not None
        assert error.temperature_c is not None

    def test_safe_run_has_no_violation_records(self):
        result = DatacenterSimulator(trace(), teg_original()).run()
        assert result.violations == []

"""CLI observability: --quiet, --json, --telemetry, --trace-spans."""

import json

import pytest

from repro.cli import main
from repro.obs import EventLog, Reporter

BATCH_ARGS = ["batch", "--traces", "common", "--schemes", "original",
              "loadbalance", "--servers", "40", "--workers", "1",
              "--mode", "kernel"]


class TestReporter:
    def test_default_prints_info_and_error(self, capsys):
        reporter = Reporter()
        reporter.info("hello")
        reporter.error("FAILED x")
        out = capsys.readouterr().out
        assert out == "hello\nFAILED x\n"

    def test_quiet_keeps_only_errors(self, capsys):
        reporter = Reporter(quiet=True)
        reporter.info("hidden")
        reporter.error("FAILED x")
        assert capsys.readouterr().out == "FAILED x\n"

    def test_json_mode_prints_one_document_on_flush(self, capsys):
        reporter = Reporter(json_mode=True)
        reporter.info("hidden")
        reporter.result("answer", {"n": 42})
        assert capsys.readouterr().out == ""
        reporter.flush()
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"answer": {"n": 42}}

    def test_everything_recorded_as_events(self):
        reporter = Reporter(quiet=True)
        reporter.info("a")
        reporter.error("b")
        reporter.result("c", 1)
        kinds = [event.kind for event in reporter.events]
        assert kinds == ["cli.info", "cli.error", "cli.result"]


class TestQuietAndJson:
    def test_quiet_batch_prints_nothing(self, capsys):
        code = main(["--quiet"] + BATCH_ARGS)
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_json_batch_is_machine_readable(self, capsys):
        code = main(["--json"] + BATCH_ARGS)
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["batch"]["jobs"] == 2
        assert len(payload["jobs"]) == 2
        assert payload["failures"] == []

    def test_json_works_on_simple_commands(self, capsys):
        code = main(["--json", "tco"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tco"]["tco_h2p_usd"] > 0

    def test_default_output_unchanged(self, capsys):
        code = main(BATCH_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("scheme")
        assert "batch: 2 jobs" in out


class TestTelemetryFlag:
    def test_writes_all_three_artifacts(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main(BATCH_ARGS + ["--telemetry", str(run_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"telemetry written to {run_dir}" in out
        for name in ("manifest.json", "events.jsonl", "metrics.prom"):
            assert (run_dir / name).exists()

    def test_manifest_totals_match_batch_section(self, tmp_path, capsys):
        from repro.obs import counter_totals

        run_dir = tmp_path / "run"
        assert main(BATCH_ARGS + ["--telemetry", str(run_dir)]) == 0
        manifest = json.loads((run_dir / "manifest.json").read_text())
        # The JSON counters dict keys labelled series (name{k="v"});
        # counter_totals folds them back to per-family totals.
        totals = counter_totals(manifest["metrics"]["counters"])
        assert totals["sim.runs"] == manifest["batch"]["jobs"] == 2
        assert totals["engine.jobs.completed"] == 2
        assert totals["sim.steps"] \
            == sum(job["steps"] for job in manifest["jobs"])
        assert manifest["command"][0] == "h2p"
        assert "--telemetry" in manifest["command"]

    def test_events_include_cli_transcript(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(BATCH_ARGS + ["--telemetry", str(run_dir)]) == 0
        events = EventLog.from_jsonl((run_dir / "events.jsonl").read_text())
        kinds = {event.kind for event in events}
        assert {"batch.start", "batch.end", "cli.info"} <= kinds

    def test_prometheus_snapshot_has_totals(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(BATCH_ARGS + ["--telemetry", str(run_dir)]) == 0
        text = (run_dir / "metrics.prom").read_text()
        assert "repro_sim_steps_total" in text
        assert "repro_engine_cache_hits_total" in text
        assert "# TYPE repro_teg_power_w histogram" in text

    def test_env_dir_fallback(self, tmp_path, capsys, monkeypatch):
        run_dir = tmp_path / "from-env"
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(run_dir))
        assert main(BATCH_ARGS) == 0
        assert (run_dir / "manifest.json").exists()

    def test_malformed_env_flag_raises_naming_variable(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("REPRO_TELEMETRY", "perhaps")
        with pytest.raises(ConfigurationError, match="REPRO_TELEMETRY"):
            main(BATCH_ARGS)

    def test_profile_flag_removed(self):
        with pytest.raises(SystemExit):
            main(BATCH_ARGS + ["--profile", "p.json"])


class TestMetricsPortFlag:
    def test_prints_live_metrics_url(self, capsys):
        code = main(BATCH_ARGS + ["--metrics-port", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "live metrics: http://127.0.0.1:" in out
        assert "/healthz" in out

    def test_json_mode_records_metrics_url(self, capsys):
        code = main(["--json"] + BATCH_ARGS + ["--metrics-port", "0"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics_url"].startswith("http://127.0.0.1:")


class TestAuditManifest:
    @pytest.fixture(scope="class")
    def run_dirs(self, tmp_path_factory):
        paths = []
        for name in ("a", "b"):
            run_dir = tmp_path_factory.mktemp("audit") / name
            assert main(["--quiet"] + BATCH_ARGS
                        + ["--telemetry", str(run_dir)]) == 0
            paths.append(run_dir / "manifest.json")
        return paths

    def test_self_diff_exits_zero(self, run_dirs, capsys):
        path = str(run_dirs[0])
        assert main(["audit", "--manifest", path, path]) == 0
        assert "agree" in capsys.readouterr().out

    def test_two_honest_runs_diff_clean(self, run_dirs, capsys):
        code = main(["audit", "--manifest",
                     str(run_dirs[0]), str(run_dirs[1])])
        assert code == 0

    def test_drift_exits_nonzero(self, run_dirs, tmp_path, capsys):
        manifest = json.loads(run_dirs[0].read_text())
        key = next(iter(manifest["metrics"]["counters"]))
        manifest["metrics"]["counters"][key] += 1.0
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(manifest), encoding="utf-8")
        code = main(["audit", "--manifest",
                     str(run_dirs[0]), str(drifted)])
        out = capsys.readouterr().out
        assert code == 1
        assert "drift" in out
        assert key.split("{")[0] in out

    def test_json_output_parses(self, run_dirs, capsys):
        path = str(run_dirs[0])
        assert main(["--json", "audit", "--manifest", path, path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["audit"]["ok"] is True
        assert payload["audit"]["drifts"] == []

    def test_negative_tolerance_rejected(self, run_dirs, capsys):
        path = str(run_dirs[0])
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="tolerance"):
            main(["audit", "--manifest", path, path,
                  "--tolerance", "-1"])

    def test_unreadable_manifest_raises(self, tmp_path):
        from repro.errors import ConfigurationError

        absent = str(tmp_path / "absent.json")
        with pytest.raises(ConfigurationError, match="cannot read"):
            main(["audit", "--manifest", absent, absent])


class TestTraceSpans:
    def test_prints_span_tree(self, capsys):
        code = main(BATCH_ARGS + ["--trace-spans"])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine.batch" in out
        assert "kernel.evaluate" in out
        assert "parent%" in out

    def test_without_flag_no_span_tree(self, capsys):
        code = main(BATCH_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "engine.batch" not in out

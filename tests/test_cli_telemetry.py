"""CLI observability: --quiet, --json, --telemetry, --trace-spans."""

import json

import pytest

from repro.cli import main
from repro.obs import EventLog, Reporter

BATCH_ARGS = ["batch", "--traces", "common", "--schemes", "original",
              "loadbalance", "--servers", "40", "--workers", "1",
              "--mode", "kernel"]


class TestReporter:
    def test_default_prints_info_and_error(self, capsys):
        reporter = Reporter()
        reporter.info("hello")
        reporter.error("FAILED x")
        out = capsys.readouterr().out
        assert out == "hello\nFAILED x\n"

    def test_quiet_keeps_only_errors(self, capsys):
        reporter = Reporter(quiet=True)
        reporter.info("hidden")
        reporter.error("FAILED x")
        assert capsys.readouterr().out == "FAILED x\n"

    def test_json_mode_prints_one_document_on_flush(self, capsys):
        reporter = Reporter(json_mode=True)
        reporter.info("hidden")
        reporter.result("answer", {"n": 42})
        assert capsys.readouterr().out == ""
        reporter.flush()
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"answer": {"n": 42}}

    def test_everything_recorded_as_events(self):
        reporter = Reporter(quiet=True)
        reporter.info("a")
        reporter.error("b")
        reporter.result("c", 1)
        kinds = [event.kind for event in reporter.events]
        assert kinds == ["cli.info", "cli.error", "cli.result"]


class TestQuietAndJson:
    def test_quiet_batch_prints_nothing(self, capsys):
        code = main(["--quiet"] + BATCH_ARGS)
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_json_batch_is_machine_readable(self, capsys):
        code = main(["--json"] + BATCH_ARGS)
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["batch"]["jobs"] == 2
        assert len(payload["jobs"]) == 2
        assert payload["failures"] == []

    def test_json_works_on_simple_commands(self, capsys):
        code = main(["--json", "tco"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tco"]["tco_h2p_usd"] > 0

    def test_default_output_unchanged(self, capsys):
        code = main(BATCH_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("scheme")
        assert "batch: 2 jobs" in out


class TestTelemetryFlag:
    def test_writes_all_three_artifacts(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main(BATCH_ARGS + ["--telemetry", str(run_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"telemetry written to {run_dir}" in out
        for name in ("manifest.json", "events.jsonl", "metrics.prom"):
            assert (run_dir / name).exists()

    def test_manifest_totals_match_batch_section(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(BATCH_ARGS + ["--telemetry", str(run_dir)]) == 0
        manifest = json.loads((run_dir / "manifest.json").read_text())
        counters = manifest["metrics"]["counters"]
        assert counters["sim.runs"] == manifest["batch"]["jobs"] == 2
        assert counters["engine.jobs.completed"] == 2
        assert counters["sim.steps"] \
            == sum(job["steps"] for job in manifest["jobs"])
        assert manifest["command"][0] == "h2p"
        assert "--telemetry" in manifest["command"]

    def test_events_include_cli_transcript(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(BATCH_ARGS + ["--telemetry", str(run_dir)]) == 0
        events = EventLog.from_jsonl((run_dir / "events.jsonl").read_text())
        kinds = {event.kind for event in events}
        assert {"batch.start", "batch.end", "cli.info"} <= kinds

    def test_prometheus_snapshot_has_totals(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(BATCH_ARGS + ["--telemetry", str(run_dir)]) == 0
        text = (run_dir / "metrics.prom").read_text()
        assert "repro_sim_steps_total" in text
        assert "repro_engine_cache_hits_total" in text
        assert "# TYPE repro_teg_power_w histogram" in text

    def test_env_dir_fallback(self, tmp_path, capsys, monkeypatch):
        run_dir = tmp_path / "from-env"
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(run_dir))
        assert main(BATCH_ARGS) == 0
        assert (run_dir / "manifest.json").exists()

    def test_malformed_env_flag_raises_naming_variable(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("REPRO_TELEMETRY", "perhaps")
        with pytest.raises(ConfigurationError, match="REPRO_TELEMETRY"):
            main(BATCH_ARGS)

    def test_profile_flag_removed(self):
        with pytest.raises(SystemExit):
            main(BATCH_ARGS + ["--profile", "p.json"])


class TestTraceSpans:
    def test_prints_span_tree(self, capsys):
        code = main(BATCH_ARGS + ["--trace-spans"])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine.batch" in out
        assert "kernel.evaluate" in out
        assert "parent%" in out

    def test_without_flag_no_span_tree(self, capsys):
        code = main(BATCH_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "engine.batch" not in out

"""Reliability model tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.reliability import (
    ArrheniusModel,
    CpuLifetimeModel,
    TegDegradationModel,
)


class TestArrhenius:
    def test_unity_at_reference(self):
        model = ArrheniusModel()
        assert model.acceleration_factor(model.reference_temp_c) == \
            pytest.approx(1.0)

    def test_hotter_wears_faster(self):
        model = ArrheniusModel()
        assert model.acceleration_factor(80.0) > 1.0
        assert model.acceleration_factor(40.0) < 1.0

    def test_rule_of_thumb_doubling(self):
        # With Ea ~ 0.7 eV, every ~10 C roughly doubles the wear rate
        # around server temperatures.
        model = ArrheniusModel(activation_energy_ev=0.7)
        ratio = (model.acceleration_factor(70.0)
                 / model.acceleration_factor(60.0))
        assert 1.7 < ratio < 2.4

    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            ArrheniusModel(activation_energy_ev=0.0)

    @given(st.floats(min_value=20.0, max_value=99.0))
    def test_monotone(self, temp):
        model = ArrheniusModel()
        assert model.acceleration_factor(temp + 1.0) > \
            model.acceleration_factor(temp)


class TestCpuLifetime:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            CpuLifetimeModel(base_lifetime_years=0.0)
        with pytest.raises(PhysicalRangeError):
            CpuLifetimeModel().effective_lifetime_years(np.array([]))

    def test_reference_lifetime(self):
        model = CpuLifetimeModel(base_lifetime_years=7.0)
        assert model.lifetime_years_at(60.0) == pytest.approx(7.0)

    def test_derating_benefit_motivates_t_safe(self):
        # Sec. V-A derates from the 78.9 C limit to T_safe = 62 C; the
        # Arrhenius view says that buys ~3x CPU life.
        model = CpuLifetimeModel()
        benefit = model.derating_benefit(78.9, 62.0)
        assert 2.0 < benefit < 5.0

    def test_effective_lifetime_between_extremes(self):
        model = CpuLifetimeModel()
        temps = np.array([55.0, 65.0])
        effective = model.effective_lifetime_years(temps)
        assert model.lifetime_years_at(65.0) < effective \
            < model.lifetime_years_at(55.0)

    def test_constant_history_matches_point_model(self):
        model = CpuLifetimeModel()
        temps = np.full(100, 63.0)
        assert model.effective_lifetime_years(temps) == pytest.approx(
            model.lifetime_years_at(63.0))


class TestTegDegradation:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            TegDegradationModel(fade_per_year=1.0)
        with pytest.raises(PhysicalRangeError):
            TegDegradationModel(lifetime_years=0.0)
        with pytest.raises(PhysicalRangeError):
            TegDegradationModel().output_factor(-1.0)

    def test_new_module_full_output(self):
        assert TegDegradationModel().output_factor(0.0) == 1.0

    def test_fade_compounds(self):
        model = TegDegradationModel(fade_per_year=0.01)
        assert model.output_factor(10.0) == pytest.approx(0.99 ** 10)

    def test_end_of_life(self):
        model = TegDegradationModel(lifetime_years=25.0)
        assert model.output_factor(25.0) == 0.0
        assert model.output_factor(30.0) == 0.0

    def test_lifetime_energy_below_ideal(self):
        model = TegDegradationModel(fade_per_year=0.004)
        ideal_kwh = 4.177 / 1000.0 * 24.0 * 365.0 * 25.0
        energy = model.lifetime_energy_kwh(4.177)
        assert 0.9 * ideal_kwh < energy < ideal_kwh

    def test_degraded_break_even_close_to_ideal(self):
        # The paper's 920-day payback moves by only days under realistic
        # fade — the investment story survives degradation.
        model = TegDegradationModel(fade_per_year=0.004)
        days = model.degraded_break_even_days(4.177, 12.0 / 4.177)
        assert 915.0 < days < 950.0

    def test_heavy_fade_delays_break_even(self):
        gentle = TegDegradationModel(fade_per_year=0.002)
        harsh = TegDegradationModel(fade_per_year=0.10)
        assert harsh.degraded_break_even_days(4.177, 12.0 / 4.177) > \
            gentle.degraded_break_even_days(4.177, 12.0 / 4.177)

    def test_dead_module_never_pays(self):
        model = TegDegradationModel()
        assert math.isinf(model.degraded_break_even_days(0.0, 3.0))

    def test_unpayable_fade(self):
        model = TegDegradationModel(fade_per_year=0.5, lifetime_years=2.0)
        assert math.isinf(
            model.degraded_break_even_days(4.0, 1000.0))

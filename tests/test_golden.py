"""Golden regression tests.

These pin exact (or near-exact) values of deterministic pipeline outputs
so that refactors cannot silently shift the reproduction's numbers.  If
a *deliberate* recalibration changes one of these, update the constant
here and record the change in EXPERIMENTS.md.
"""

import numpy as np
import pytest

import repro
from repro.teg.device import PAPER_TEG
from repro.teg.module import default_server_module
from repro.thermal.cpu_model import CoolingSetting, CpuThermalModel


class TestModelGoldens:
    """Closed-form model outputs (platform-independent arithmetic)."""

    def test_eq3_voc_at_25(self):
        assert PAPER_TEG.open_circuit_voltage_v(25.0) == pytest.approx(
            1.1149, abs=1e-12)

    def test_eq6_pmax_at_25(self):
        assert PAPER_TEG.max_power_w(25.0) == pytest.approx(
            0.1811, abs=1e-12)

    def test_module_generation_at_operating_point(self):
        module = default_server_module()
        assert module.generation_w(54.5, 20.0, 150.0) == pytest.approx(
            4.106069, abs=1e-4)

    def test_eq20_power_curve(self):
        from repro.thermal.cpu_model import cpu_power_w

        assert cpu_power_w(0.0) == pytest.approx(9.394881, abs=1e-5)
        assert cpu_power_w(0.5) == pytest.approx(48.431880, abs=1e-5)
        assert cpu_power_w(1.0) == pytest.approx(77.165318, abs=1e-5)

    def test_cpu_temperature_anchor(self):
        model = CpuThermalModel()
        setting = CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=45.0)
        assert model.cpu_temp_c(1.0, setting) == pytest.approx(
            78.115, abs=1e-2)

    def test_tco_reductions(self):
        from repro.economics.tco import TcoModel

        model = TcoModel()
        assert model.breakdown(3.694).reduction_fraction == \
            pytest.approx(0.0049556, abs=1e-6)
        assert model.breakdown(4.177).reduction_fraction == \
            pytest.approx(0.0056883, abs=1e-6)

    def test_break_even(self):
        from repro.economics.breakeven import BreakEvenAnalysis

        assert BreakEvenAnalysis().break_even_days(4.177) == \
            pytest.approx(920.7934, abs=1e-3)

    def test_expected_max_of_normal(self):
        from repro.cooling.circulation_design import (
            expected_max_of_normal,
        )

        assert expected_max_of_normal(0.0, 1.0, 100) == pytest.approx(
            2.507594, abs=1e-5)


class TestPipelineGoldens:
    """Seeded end-to-end outputs (guard the calibrated configuration)."""

    @pytest.fixture(scope="class")
    def comparison(self):
        trace = repro.trace_by_name("common", n_servers=100, seed=2)
        return repro.H2PSystem().compare(trace)

    def test_trace_checksum(self):
        trace = repro.trace_by_name("common", n_servers=100, seed=2)
        assert float(trace.utilisation.mean()) == pytest.approx(
            0.23375, abs=2e-4)

    def test_original_average(self, comparison):
        assert comparison.baseline.average_generation_w == \
            pytest.approx(3.69, abs=0.05)

    def test_loadbalance_average(self, comparison):
        assert comparison.optimised.average_generation_w == \
            pytest.approx(4.28, abs=0.05)

    def test_policy_decision_golden(self, lookup_space):
        from repro.control.cooling_policy import LookupSpacePolicy

        policy = LookupSpacePolicy(space=lookup_space,
                                   aggregation="max")
        decision = policy.decide([0.5])
        # The chosen setting is a stable grid point of the default space.
        assert decision.setting.flow_l_per_h == pytest.approx(300.0)
        assert decision.setting.inlet_temp_c == pytest.approx(54.0)
        assert decision.predicted_cpu_temp_c == pytest.approx(
            61.398, abs=1e-2)

    def test_fig3_peak_golden(self):
        from repro.teg.placement import PlacementStudy

        outcome = PlacementStudy().run()
        assert outcome.peak_sandwiched_cpu_c == pytest.approx(76.3,
                                                              abs=0.3)
        assert outcome.peak_direct_cpu_c == pytest.approx(36.0, abs=0.3)

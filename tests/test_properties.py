"""Cross-module property tests: system-level invariants under hypothesis.

These complement the per-module tests by asserting properties that span
subsystem boundaries — the statements that must hold for *any* input,
not just the calibrated operating points.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.constants import CPU_SAFE_TEMP_C
from repro.control.cooling_policy import AnalyticPolicy, LookupSpacePolicy
from repro.control.scheduling import IdealBalancer, ThresholdBalancer
from repro.cooling.chiller import Chiller
from repro.cooling.loop import WaterCirculation
from repro.economics.tco import TcoModel
from repro.teg.module import default_server_module
from repro.thermal.cpu_model import CoolingSetting, CpuThermalModel
from repro.workloads.trace import WorkloadTrace

util_vectors = arrays(float, st.integers(min_value=2, max_value=16),
                      elements=st.floats(min_value=0.0, max_value=1.0))

MODULE = default_server_module()
MODEL = CpuThermalModel()


class TestSafetyInvariants:
    """No policy may cook a CPU."""

    @given(util_vectors)
    @settings(max_examples=40, deadline=None)
    def test_lookup_policy_respects_safe_band(self, lookup_space,
                                              utils):
        policy = LookupSpacePolicy(space=lookup_space, aggregation="max")
        decision = policy.decide(utils)
        binding = float(np.max(utils))
        actual = MODEL.cpu_temp_c(
            binding, decision.setting)
        assert actual <= CPU_SAFE_TEMP_C + policy.tolerance_c + 0.5

    @given(util_vectors)
    @settings(max_examples=40, deadline=None)
    def test_analytic_policy_respects_safe_band(self, utils):
        policy = AnalyticPolicy()
        decision = policy.decide(utils)
        binding = float(np.max(utils))
        assert MODEL.cpu_temp_c(binding, decision.setting) \
            <= CPU_SAFE_TEMP_C + 1.5

    @given(util_vectors)
    @settings(max_examples=25, deadline=None)
    def test_balanced_policy_never_exceeds_on_balanced_load(
            self, lookup_space, utils):
        # After ideal balancing every server carries the mean, so an
        # avg-keyed decision is safe for all of them.
        balanced = IdealBalancer().schedule(utils)
        policy = LookupSpacePolicy(space=lookup_space, aggregation="avg")
        decision = policy.decide(balanced)
        worst = MODEL.cpu_temp_c(float(balanced.max()), decision.setting)
        assert worst <= CPU_SAFE_TEMP_C + policy.tolerance_c + 0.5


class TestTegModuleInvariants:
    """The per-server TEG module as a pure function of temperatures."""

    @given(st.floats(min_value=0.0, max_value=70.0),
           st.floats(min_value=5.0, max_value=30.0),
           st.floats(min_value=10.0, max_value=300.0))
    @settings(max_examples=60, deadline=None)
    def test_generation_never_negative(self, warm, cold, flow):
        assert MODULE.generation_w(warm, cold, flow) >= 0.0

    @given(st.floats(min_value=5.0, max_value=30.0),
           st.floats(min_value=0.0, max_value=25.0),
           st.floats(min_value=10.0, max_value=300.0))
    @settings(max_examples=60, deadline=None)
    def test_generation_zero_without_temperature_difference(
            self, cold, deficit, flow):
        # Warm loop at or below the cold source: nothing to harvest.
        assert MODULE.generation_w(cold - deficit, cold, flow) == 0.0
        assert MODULE.generation_w(cold, cold, flow) == 0.0

    @given(st.floats(min_value=5.0, max_value=30.0),
           st.floats(min_value=1.0, max_value=20.0),
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=10.0, max_value=300.0))
    @settings(max_examples=60, deadline=None)
    def test_generation_monotone_in_delta_t(self, cold, delta, bump,
                                            flow):
        # Monotone within the calibrated range (dT >= 1 C; the Eq. 6
        # quadratic has a deliberate non-physical toe below ~0.5 C).
        low = MODULE.generation_w(cold + delta, cold, flow)
        high = MODULE.generation_w(cold + delta + bump, cold, flow)
        assert high >= low


class TestGenerationInvariants:
    @given(st.floats(min_value=21.0, max_value=60.0),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_generation_monotone_in_outlet_temp(self, warm, bump):
        # Restricted to dT >= 1: the paper's quadratic fit (Eq. 6) has a
        # non-physical decreasing toe below dT ~ 0.5 C (its vertex),
        # which we preserve deliberately for fidelity.
        low = MODULE.generation_w(warm, 20.0)
        high = MODULE.generation_w(warm + bump, 20.0)
        assert high >= low

    @given(st.floats(min_value=25.0, max_value=60.0),
           st.floats(min_value=0.1, max_value=4.9))
    @settings(max_examples=50, deadline=None)
    def test_generation_monotone_in_cold_source(self, warm, bump):
        cold_base = 20.0
        assert MODULE.generation_w(warm, cold_base) >= \
            MODULE.generation_w(warm, cold_base + bump)

    @given(util_vectors)
    @settings(max_examples=25, deadline=None)
    def test_circulation_aggregate_permutation_invariant(self, utils):
        circulation = WaterCirculation(n_servers=len(utils))
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=48.0)
        forward = circulation.evaluate(utils, setting)
        circulation2 = WaterCirculation(n_servers=len(utils))
        backward = circulation2.evaluate(utils[::-1].copy(), setting)
        assert forward.total_generation_w == pytest.approx(
            backward.total_generation_w, rel=1e-9)
        assert forward.total_cpu_power_w == pytest.approx(
            backward.total_cpu_power_w, rel=1e-9)
        assert forward.max_cpu_temp_c == pytest.approx(
            backward.max_cpu_temp_c, rel=1e-9)


class TestSchedulingInvariants:
    @given(util_vectors, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_any_balancer_helps_or_is_neutral_for_binding(self, utils,
                                                          cap):
        # Every scheduler weakly reduces the binding (max) utilisation —
        # the quantity that caps the inlet temperature.
        for scheduler in (IdealBalancer(), ThresholdBalancer(cap=cap)):
            out = scheduler.schedule(utils)
            assert out.max() <= utils.max() + 1e-9

    @given(util_vectors)
    @settings(max_examples=25, deadline=None)
    def test_balancing_weakly_raises_allowed_inlet(self, utils):
        # Lower binding utilisation -> the safe-temperature constraint
        # allows a hotter inlet (monotonicity of the inversion).
        flow = 100.0
        raw_inlet = MODEL.inlet_for_cpu_temp(float(utils.max()), flow,
                                             CPU_SAFE_TEMP_C)
        balanced = IdealBalancer().schedule(utils)
        balanced_inlet = MODEL.inlet_for_cpu_temp(
            float(balanced.max()), flow, CPU_SAFE_TEMP_C)
        assert balanced_inlet >= raw_inlet - 1e-9


class TestEconomicsInvariants:
    @given(st.floats(min_value=0.0, max_value=20.0),
           st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=50, deadline=None)
    def test_tco_reduction_monotone_in_generation(self, gen, bump):
        model = TcoModel()
        assert model.breakdown(gen + bump).reduction_fraction >= \
            model.breakdown(gen).reduction_fraction

    @given(st.floats(min_value=0.0, max_value=15.0),
           st.integers(min_value=1, max_value=500),
           st.floats(min_value=1.0, max_value=300.0),
           st.floats(min_value=1.0, max_value=7200.0))
    @settings(max_examples=50, deadline=None)
    def test_chiller_energy_nonnegative_and_linear(self, delta, n, flow,
                                                   duration):
        chiller = Chiller()
        energy = chiller.cooling_energy_j(delta, n, flow, duration)
        assert energy >= 0.0
        doubled = chiller.cooling_energy_j(delta, n, flow,
                                           2.0 * duration)
        assert doubled == pytest.approx(2.0 * energy, rel=1e-9,
                                        abs=1e-9)


class TestTraceInvariants:
    @given(arrays(float, (12, 6),
                  elements=st.floats(min_value=0.0, max_value=1.0)))
    @settings(max_examples=30, deadline=None)
    def test_resample_preserves_mean(self, matrix):
        trace = WorkloadTrace(matrix, 300.0)
        coarse = trace.resample(600.0)
        assert coarse.utilisation.mean() == pytest.approx(
            trace.utilisation.mean(), abs=1e-12)

    @given(arrays(float, (8, 5),
                  elements=st.floats(min_value=0.0, max_value=1.0)))
    @settings(max_examples=30, deadline=None)
    def test_balanced_trace_volatility_never_higher(self, matrix):
        trace = WorkloadTrace(matrix, 300.0)
        balanced = trace.balanced()
        assert balanced.statistics().volatility <= \
            trace.statistics().volatility + 1e-12

"""Monte Carlo uncertainty-propagation tests."""

import numpy as np
import pytest

from repro.errors import PhysicalRangeError
from repro.uncertainty import (
    MonteCarloStudy,
    ParameterPriors,
    UncertaintyResult,
)
from repro.workloads.synthetic import common_trace


@pytest.fixture(scope="module")
def trace():
    return common_trace(n_servers=30, duration_s=6 * 3600.0, seed=5)


@pytest.fixture(scope="module")
def result(trace):
    return MonteCarloStudy(seed=1).run(trace, n_draws=80)


class TestPriors:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            ParameterPriors(teg_quad_sigma=-0.01)
        with pytest.raises(PhysicalRangeError):
            ParameterPriors(cpu_power_scale_sigma=0.6)


class TestStudy:
    def test_bad_draw_count_rejected(self, trace):
        with pytest.raises(PhysicalRangeError):
            MonteCarloStudy().run(trace, n_draws=0)

    def test_sample_shapes(self, result):
        assert result.generation_w.shape == (80,)
        assert result.pre.shape == (80,)
        assert result.tco_reduction.shape == (80,)

    def test_deterministic_given_seed(self, trace):
        a = MonteCarloStudy(seed=7).run(trace, n_draws=10)
        b = MonteCarloStudy(seed=7).run(trace, n_draws=10)
        assert np.array_equal(a.generation_w, b.generation_w)

    def test_different_seeds_differ(self, trace):
        a = MonteCarloStudy(seed=7).run(trace, n_draws=10)
        b = MonteCarloStudy(seed=8).run(trace, n_draws=10)
        assert not np.array_equal(a.generation_w, b.generation_w)

    def test_paper_numbers_inside_interval(self, result):
        # The paper's headline generation (3.98 W for common under
        # LoadBalance-ish settings; 3.6-4.2 W band) should be covered.
        low, high = result.interval("generation_w", 0.95)
        assert low < 4.0 < high or low < 3.9 < high

    def test_pre_in_plausible_band(self, result):
        low, high = result.interval("pre", 0.95)
        assert 0.08 < low < high < 0.25

    def test_tco_reduction_sub_percent(self, result):
        low, high = result.interval("tco_reduction", 0.95)
        assert 0.0 < low < high < 0.01

    def test_zero_priors_collapse_spread(self, trace):
        frozen = ParameterPriors(
            teg_quad_sigma=0.0, teg_slope_sigma=0.0,
            cpu_power_scale_sigma=0.0, thermal_resistance_sigma=0.0,
            outlet_delta_sigma=0.0)
        result = MonteCarloStudy(priors=frozen, seed=2).run(trace,
                                                            n_draws=10)
        assert result.generation_w.std() == pytest.approx(0.0, abs=1e-12)

    def test_wider_priors_wider_interval(self, trace):
        narrow = MonteCarloStudy(
            priors=ParameterPriors(teg_quad_sigma=0.01,
                                   cpu_power_scale_sigma=0.01,
                                   thermal_resistance_sigma=0.01,
                                   outlet_delta_sigma=0.01),
            seed=3).run(trace, n_draws=60)
        wide = MonteCarloStudy(
            priors=ParameterPriors(teg_quad_sigma=0.10,
                                   cpu_power_scale_sigma=0.15,
                                   thermal_resistance_sigma=0.12,
                                   outlet_delta_sigma=0.15),
            seed=3).run(trace, n_draws=60)
        narrow_span = np.subtract(*reversed(
            narrow.interval("generation_w")))
        wide_span = np.subtract(*reversed(wide.interval("generation_w")))
        assert wide_span > narrow_span


class TestResultApi:
    def test_interval_validation(self, result):
        with pytest.raises(PhysicalRangeError):
            result.interval("generation_w", confidence=1.5)

    def test_summary_structure(self, result):
        summary = result.summary()
        assert set(summary) == {"generation_w", "pre", "tco_reduction"}
        for metric in summary.values():
            assert metric["low"] <= metric["median"] <= metric["high"]


class TestImprovementRobustness:
    def test_balancing_wins_in_every_draw(self, trace):
        improvements = MonteCarloStudy(seed=9).run_improvement(
            trace, n_draws=50)
        assert improvements.shape == (50,)
        # The paper's headline conclusion survives the whole parameter
        # cloud: balancing never loses.
        assert np.all(improvements > 0.0)

    def test_improvement_magnitude_plausible(self, trace):
        improvements = MonteCarloStudy(seed=9).run_improvement(
            trace, n_draws=50)
        assert 0.03 < float(np.median(improvements)) < 0.35

    def test_bad_draws_rejected(self, trace):
        with pytest.raises(PhysicalRangeError):
            MonteCarloStudy().run_improvement(trace, n_draws=0)

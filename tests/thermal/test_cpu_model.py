"""CPU thermal/power model tests — anchored to the paper's measurements."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import CPU_MAX_OPERATING_TEMP_C
from repro.errors import PhysicalRangeError
from repro.thermal.cpu_model import (
    CoolingSetting,
    CpuThermalModel,
    FrequencyGovernor,
    OutletDeltaModel,
    cpu_power_w,
)

utilisations = st.floats(min_value=0.0, max_value=1.0)


class TestCpuPower:
    """Eq. 20 of the paper."""

    def test_idle_power(self):
        assert cpu_power_w(0.0) == pytest.approx(9.39, abs=0.05)

    def test_full_load_power(self):
        assert cpu_power_w(1.0) == pytest.approx(77.17, abs=0.05)

    def test_typical_google_load(self):
        # At the traces' ~0.22 mean utilisation CPU power is ~28 W, which
        # is what makes the paper's 14 % PRE arithmetic work.
        assert 25.0 < cpu_power_w(0.22) < 31.0

    def test_out_of_range_rejected(self):
        with pytest.raises(PhysicalRangeError):
            cpu_power_w(-0.1)
        with pytest.raises(PhysicalRangeError):
            cpu_power_w(1.1)

    @given(st.floats(min_value=0.0, max_value=0.999))
    def test_monotone_increasing(self, u):
        assert cpu_power_w(u + 1e-3) > cpu_power_w(u)

    @given(utilisations)
    def test_concave(self, u):
        # The log law has diminishing returns: the marginal watt per
        # utilisation point shrinks.
        h = 1e-3
        if h <= u <= 1.0 - h:
            left = cpu_power_w(u) - cpu_power_w(u - h)
            right = cpu_power_w(u + h) - cpu_power_w(u)
            assert right < left

    def test_vectorised_matches_scalar(self):
        utils = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        vector = cpu_power_w(utils)
        assert vector.shape == utils.shape
        for u, p in zip(utils, vector):
            assert p == pytest.approx(cpu_power_w(float(u)))


class TestCoolingSetting:
    def test_invalid_flow_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CoolingSetting(flow_l_per_h=0.0, inlet_temp_c=40.0)

    def test_implausible_inlet_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CoolingSetting(flow_l_per_h=50.0, inlet_temp_c=120.0)

    def test_frozen(self):
        setting = CoolingSetting(flow_l_per_h=50.0, inlet_temp_c=40.0)
        with pytest.raises(AttributeError):
            setting.inlet_temp_c = 50.0


class TestFrequencyGovernor:
    """Fig. 10: powersave settles at ~2.5 GHz."""

    def test_idle_frequency(self):
        gov = FrequencyGovernor()
        assert gov.frequency_ghz(0.0) == pytest.approx(1.2)

    def test_plateau_at_full_load(self):
        gov = FrequencyGovernor()
        assert gov.frequency_ghz(1.0) == pytest.approx(2.5, abs=0.05)

    def test_slows_beyond_knee(self):
        gov = FrequencyGovernor()
        before = gov.frequency_ghz(0.5) - gov.frequency_ghz(0.4)
        after = gov.frequency_ghz(0.9) - gov.frequency_ghz(0.8)
        assert after < before

    @given(utilisations)
    def test_monotone_and_bounded(self, u):
        gov = FrequencyGovernor()
        freq = gov.frequency_ghz(u)
        assert 1.2 <= freq <= 3.0
        if u < 1.0:
            assert gov.frequency_ghz(min(1.0, u + 1e-3)) >= freq

    def test_out_of_range_rejected(self):
        with pytest.raises(PhysicalRangeError):
            FrequencyGovernor().frequency_ghz(1.5)


class TestOutletDelta:
    """Fig. 9: dT_out-in in 1-3.5 C, driven by utilisation."""

    def test_range_matches_paper(self):
        model = OutletDeltaModel()
        low = model.delta_c(0.0, 20.0, 35.0)
        high = model.delta_c(1.0, 20.0, 35.0)
        assert 0.8 <= low <= 1.5
        assert 3.0 <= high <= 3.6

    def test_utilisation_dominates(self):
        model = OutletDeltaModel()
        util_span = (model.delta_c(1.0, 20.0, 35.0)
                     - model.delta_c(0.0, 20.0, 35.0))
        flow_span = abs(model.delta_c(0.5, 20.0, 35.0)
                        - model.delta_c(0.5, 300.0, 35.0))
        inlet_span = abs(model.delta_c(0.5, 20.0, 30.0)
                         - model.delta_c(0.5, 20.0, 45.0))
        assert util_span > 3.0 * flow_span
        assert util_span > 10.0 * inlet_span

    def test_physical_mode_energy_balance(self):
        model = OutletDeltaModel(mode="physical")
        delta = model.delta_c(1.0, 20.0, 35.0)
        # 85 % of 77 W into 20 L/H of water: ~2.8 C.
        assert delta == pytest.approx(2.81, abs=0.1)

    def test_physical_mode_inverse_in_flow(self):
        model = OutletDeltaModel(mode="physical")
        assert model.delta_c(0.5, 40.0, 35.0) == pytest.approx(
            model.delta_c(0.5, 20.0, 35.0) / 2.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(PhysicalRangeError):
            OutletDeltaModel(mode="guess")

    def test_invalid_inputs_rejected(self):
        model = OutletDeltaModel()
        with pytest.raises(PhysicalRangeError):
            model.delta_c(1.5, 20.0, 35.0)
        with pytest.raises(PhysicalRangeError):
            model.delta_c(0.5, 0.0, 35.0)

    @given(utilisations, st.floats(min_value=20.0, max_value=300.0))
    def test_always_positive(self, u, flow):
        assert OutletDeltaModel().delta_c(u, flow, 40.0) > 0.0


class TestCpuThermalModel:
    """Figs. 10-11 anchors from Sec. II-B and Sec. IV."""

    def test_slope_in_paper_band(self, cpu_model):
        # k in [1, 1.3], larger at low flow.
        assert 1.2 < cpu_model.slope(20.0) <= 1.3
        assert 1.0 < cpu_model.slope(300.0) < 1.1

    def test_slope_decreases_with_flow(self, cpu_model):
        assert cpu_model.slope(20.0) > cpu_model.slope(100.0) \
            > cpu_model.slope(300.0)

    def test_full_load_45c_water_is_safe(self, cpu_model):
        # Sec. II-B: 40-45 C water never exceeds 78.9 C even at 100 %.
        for inlet in (40.0, 42.5, 45.0):
            setting = CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=inlet)
            assert cpu_model.cpu_temp_c(1.0, setting) \
                <= CPU_MAX_OPERATING_TEMP_C

    def test_50c_water_high_load_unsafe(self, cpu_model):
        # Sec. II-B: >50 C water with >=70 % utilisation exceeds the max.
        setting = CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=50.5)
        assert cpu_model.cpu_temp_c(0.75, setting) \
            > CPU_MAX_OPERATING_TEMP_C

    def test_linear_in_inlet_temperature(self, cpu_model):
        # Fig. 11: T_CPU grows linearly with coolant temperature.
        setting_fn = lambda t: CoolingSetting(flow_l_per_h=50.0,
                                              inlet_temp_c=t)
        t30 = cpu_model.cpu_temp_c(1.0, setting_fn(30.0))
        t40 = cpu_model.cpu_temp_c(1.0, setting_fn(40.0))
        t50 = cpu_model.cpu_temp_c(1.0, setting_fn(50.0))
        assert (t50 - t40) == pytest.approx(t40 - t30, rel=1e-9)

    def test_flow_saturation(self, cpu_model):
        # Fig. 11: above ~250 L/H extra flow barely helps.
        setting = lambda f: CoolingSetting(flow_l_per_h=f, inlet_temp_c=45.0)
        gain_low = (cpu_model.cpu_temp_c(1.0, setting(20.0))
                    - cpu_model.cpu_temp_c(1.0, setting(70.0)))
        gain_high = (cpu_model.cpu_temp_c(1.0, setting(250.0))
                     - cpu_model.cpu_temp_c(1.0, setting(300.0)))
        assert gain_low > 5.0 * gain_high

    def test_inlet_inversion_round_trip(self, cpu_model):
        inlet = cpu_model.inlet_for_cpu_temp(0.6, 100.0, 62.0)
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=inlet)
        assert cpu_model.cpu_temp_c(0.6, setting) == pytest.approx(62.0)

    @given(utilisations,
           st.floats(min_value=20.0, max_value=300.0),
           st.floats(min_value=45.0, max_value=75.0))
    def test_inversion_property(self, u, flow, target):
        model = CpuThermalModel()
        inlet = model.inlet_for_cpu_temp(u, flow, target)
        setting = CoolingSetting(flow_l_per_h=flow,
                                 inlet_temp_c=max(-9.0, min(89.0, inlet)))
        if setting.inlet_temp_c == inlet:
            assert model.cpu_temp_c(u, setting) == pytest.approx(
                target, abs=1e-9)

    def test_outlet_above_inlet(self, cpu_model, warm_setting):
        assert cpu_model.outlet_temp_c(0.5, warm_setting) \
            > warm_setting.inlet_temp_c

    def test_is_safe_with_margin(self, cpu_model):
        setting = CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=45.0)
        assert cpu_model.is_safe(1.0, setting)
        assert not cpu_model.is_safe(1.0, setting, safety_margin_c=10.0)

    def test_extra_resistance_heats_cpu(self):
        # The Fig. 3 effect in steady state: the TEG's thermal resistance
        # in the heat path drives the CPU far hotter.
        base = CpuThermalModel()
        sandwiched = CpuThermalModel(extra_resistance_k_per_w=1.55)
        setting = CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=28.0)
        assert (sandwiched.cpu_temp_c(0.2, setting)
                - base.cpu_temp_c(0.2, setting)) > 30.0

    def test_vectorised_utilisation(self, cpu_model, warm_setting):
        utils = np.linspace(0.0, 1.0, 5)
        temps = cpu_model.cpu_temp_c(utils, warm_setting)
        assert temps.shape == utils.shape
        assert np.all(np.diff(temps) > 0)

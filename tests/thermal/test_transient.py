"""Transient RC thermal network tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicalRangeError
from repro.thermal.transient import (
    ThermalLink,
    ThermalNode,
    TransientThermalNetwork,
    step_load_profile,
)


def two_node_network(power_w=50.0, resistance=0.5, capacity=200.0,
                     coolant_c=30.0):
    nodes = [
        ThermalNode(name="die", capacity_j_per_k=capacity,
                    initial_temp_c=coolant_c, power_w=power_w),
        ThermalNode(name="coolant", initial_temp_c=coolant_c, boundary=True),
    ]
    links = [ThermalLink("die", "coolant", 1.0 / resistance)]
    return TransientThermalNetwork(nodes, links)


class TestValidation:
    def test_duplicate_node_names_rejected(self):
        nodes = [ThermalNode(name="a"), ThermalNode(name="a")]
        with pytest.raises(ConfigurationError):
            TransientThermalNetwork(nodes, [])

    def test_unknown_link_endpoint_rejected(self):
        nodes = [ThermalNode(name="a"), ThermalNode(name="b")]
        with pytest.raises(ConfigurationError):
            TransientThermalNetwork(
                nodes, [ThermalLink("a", "ghost", 1.0)])

    def test_self_link_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalLink("a", "a", 1.0)

    def test_non_positive_conductance_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ThermalLink("a", "b", 0.0)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ThermalNode(name="x", capacity_j_per_k=0.0)

    def test_bad_simulation_arguments(self):
        net = two_node_network()
        with pytest.raises(PhysicalRangeError):
            net.simulate(-1.0)
        with pytest.raises(PhysicalRangeError):
            net.simulate(10.0, output_dt_s=0.0)


class TestPhysics:
    def test_steady_state_matches_analytic(self):
        # T_final = T_coolant + P * R.
        net = two_node_network(power_w=50.0, resistance=0.5, coolant_c=30.0)
        result = net.simulate(duration_s=2000.0, output_dt_s=5.0)
        assert result.final_temp_c("die") == pytest.approx(
            30.0 + 50.0 * 0.5, abs=0.1)

    def test_boundary_node_never_moves(self):
        net = two_node_network()
        result = net.simulate(500.0, 5.0)
        coolant = result.temperatures_c["coolant"]
        assert np.all(coolant == coolant[0])

    def test_time_constant(self):
        # After one tau = R*C the response reaches ~63 % of the step.
        resistance, capacity = 0.5, 200.0
        net = two_node_network(power_w=40.0, resistance=resistance,
                               capacity=capacity, coolant_c=25.0)
        tau = resistance * capacity
        result = net.simulate(duration_s=tau * 6, output_dt_s=1.0)
        idx = int(tau)
        rise = result.temperatures_c["die"][idx] - 25.0
        assert rise == pytest.approx(40.0 * resistance * 0.632, rel=0.05)

    def test_monotone_heating(self):
        net = two_node_network()
        result = net.simulate(500.0, 5.0)
        die = result.temperatures_c["die"]
        assert np.all(np.diff(die) >= -1e-9)

    def test_no_power_stays_at_equilibrium(self):
        net = two_node_network(power_w=0.0)
        result = net.simulate(300.0, 5.0)
        assert result.max_temp_c("die") == pytest.approx(30.0, abs=1e-6)

    def test_energy_conservation_isolated_pair(self):
        # Two capacitive nodes exchanging heat conserve total energy.
        nodes = [
            ThermalNode(name="hot", capacity_j_per_k=100.0,
                        initial_temp_c=80.0),
            ThermalNode(name="cold", capacity_j_per_k=300.0,
                        initial_temp_c=20.0),
        ]
        net = TransientThermalNetwork(
            nodes, [ThermalLink("hot", "cold", 2.0)])
        result = net.simulate(2000.0, 5.0)
        final_hot = result.final_temp_c("hot")
        final_cold = result.final_temp_c("cold")
        # Both converge to the capacity-weighted mean: 35 C.
        expected = (100.0 * 80.0 + 300.0 * 20.0) / 400.0
        assert final_hot == pytest.approx(expected, abs=0.2)
        assert final_cold == pytest.approx(expected, abs=0.2)

    def test_three_node_chain_ordering(self):
        # die -> plate -> coolant: temperatures must be ordered.
        nodes = [
            ThermalNode(name="die", capacity_j_per_k=150.0,
                        initial_temp_c=30.0, power_w=40.0),
            ThermalNode(name="plate", capacity_j_per_k=80.0,
                        initial_temp_c=30.0),
            ThermalNode(name="coolant", initial_temp_c=30.0, boundary=True),
        ]
        links = [ThermalLink("die", "plate", 2.0),
                 ThermalLink("plate", "coolant", 3.0)]
        result = TransientThermalNetwork(nodes, links).simulate(2000.0, 5.0)
        assert result.final_temp_c("die") > result.final_temp_c("plate") \
            > 30.0


class TestStepLoadProfile:
    def test_phases_addressed_correctly(self):
        profile = step_load_profile([(10.0, 1.0), (10.0, 2.0), (5.0, 3.0)])
        assert profile(0.0) == 1.0
        assert profile(9.99) == 1.0
        assert profile(10.0) == 2.0
        assert profile(19.99) == 2.0
        assert profile(20.0) == 3.0

    def test_last_phase_persists(self):
        profile = step_load_profile([(10.0, 1.0), (10.0, 5.0)])
        assert profile(1e6) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            step_load_profile([])

    def test_non_positive_duration_rejected(self):
        with pytest.raises(PhysicalRangeError):
            step_load_profile([(0.0, 1.0)])

    def test_in_network(self):
        profile = step_load_profile([(100.0, 0.0), (100.0, 50.0)])
        nodes = [
            ThermalNode(name="die", capacity_j_per_k=50.0,
                        initial_temp_c=30.0, power_w=profile),
            ThermalNode(name="coolant", initial_temp_c=30.0, boundary=True),
        ]
        net = TransientThermalNetwork(
            nodes, [ThermalLink("die", "coolant", 2.0)])
        result = net.simulate(200.0, 1.0)
        die = result.temperatures_c["die"]
        # Flat during the zero-power phase, rising afterwards.
        assert die[50] == pytest.approx(30.0, abs=1e-6)
        assert die[-1] > 40.0

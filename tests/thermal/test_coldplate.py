"""Cold plate and heat exchanger tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.thermal.coldplate import ColdPlate, CounterflowHeatExchanger


class TestColdPlate:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ColdPlate(ua_w_per_k=0.0)
        with pytest.raises(PhysicalRangeError):
            ColdPlate(contact_resistance_k_per_w=-0.1)

    def test_effectiveness_bounds(self):
        plate = ColdPlate()
        assert 0.0 < plate.effectiveness(100.0) < 1.0

    def test_stagnant_coolant_fully_equilibrates(self):
        plate = ColdPlate()
        assert plate.effectiveness(0.0) == 1.0
        assert plate.outlet_temp_c(70.0, 30.0, 0.0) == 70.0

    @given(st.floats(min_value=1.0, max_value=299.0))
    def test_effectiveness_decreases_with_flow(self, flow):
        # Faster coolant spends less time in the plate.
        plate = ColdPlate()
        assert (plate.effectiveness(flow)
                > plate.effectiveness(flow + 1.0))

    def test_heat_positive_when_surface_hotter(self):
        plate = ColdPlate()
        assert plate.heat_to_coolant_w(60.0, 40.0, 100.0) > 0.0

    def test_heat_negative_when_surface_colder(self):
        # The TEG cold-side plate pre-heats a colder surface.
        plate = ColdPlate()
        assert plate.heat_to_coolant_w(20.0, 40.0, 100.0) < 0.0

    def test_outlet_between_inlet_and_surface(self):
        plate = ColdPlate()
        outlet = plate.outlet_temp_c(70.0, 40.0, 100.0)
        assert 40.0 < outlet < 70.0

    def test_surface_temp_inverts_heat(self):
        plate = ColdPlate()
        surface = plate.surface_temp_for_heat_w(77.0, 45.0, 20.0)
        # Round trip: that surface temperature must reject ~77 W again
        # (up to the contact-resistance term, which is excluded from the
        # plate-side balance).
        plate_only = surface - 77.0 * plate.contact_resistance_k_per_w
        assert plate.heat_to_coolant_w(plate_only, 45.0, 20.0) == \
            pytest.approx(77.0, rel=1e-6)

    def test_surface_temp_needs_flow(self):
        with pytest.raises(PhysicalRangeError):
            ColdPlate().surface_temp_for_heat_w(77.0, 45.0, 0.0)

    @given(st.floats(min_value=5.0, max_value=300.0),
           st.floats(min_value=5.0, max_value=150.0))
    def test_hotter_source_needs_more_surface_temp(self, flow, heat):
        plate = ColdPlate()
        t1 = plate.surface_temp_for_heat_w(heat, 40.0, flow)
        t2 = plate.surface_temp_for_heat_w(heat + 5.0, 40.0, flow)
        assert t2 > t1


class TestCounterflowHeatExchanger:
    def test_invalid_ua_rejected(self):
        with pytest.raises(PhysicalRangeError):
            CounterflowHeatExchanger(ua_w_per_k=-1.0)

    def test_effectiveness_bounds(self):
        hx = CounterflowHeatExchanger()
        eps = hx.effectiveness(500.0, 500.0)
        assert 0.0 < eps < 1.0

    def test_balanced_flow_limit(self):
        # With equal capacity rates, eps = NTU / (1 + NTU).
        hx = CounterflowHeatExchanger(ua_w_per_k=100.0)
        eps = hx.effectiveness(300.0, 300.0, 45.0, 45.0)
        capacity = 300.0 / 3600.0 * 4.2e3 / 1000.0 * 1000.0
        # Approximate with the constant-cp capacity (within a percent).
        ntu = 100.0 / capacity
        assert eps == pytest.approx(ntu / (1.0 + ntu), rel=0.02)

    def test_no_flow_no_transfer(self):
        hx = CounterflowHeatExchanger()
        assert hx.effectiveness(0.0, 100.0) == 0.0
        assert hx.transferred_heat_w(50.0, 20.0, 0.0, 100.0) == 0.0

    def test_no_uphill_heat(self):
        hx = CounterflowHeatExchanger()
        assert hx.transferred_heat_w(20.0, 50.0, 100.0, 100.0) == 0.0

    def test_outlet_temperatures_bracketed(self):
        hx = CounterflowHeatExchanger()
        hot_out, cold_out = hx.outlet_temps_c(50.0, 20.0, 200.0, 200.0)
        # Each stream stays within the inlet envelope.  Note a counterflow
        # exchanger legitimately allows hot_out < cold_out at high NTU —
        # that is exactly what distinguishes it from parallel flow.
        assert 20.0 < hot_out < 50.0
        assert 20.0 < cold_out < 50.0

    def test_energy_balance(self):
        hx = CounterflowHeatExchanger()
        q = hx.transferred_heat_w(50.0, 20.0, 150.0, 250.0)
        hot_out, cold_out = hx.outlet_temps_c(50.0, 20.0, 150.0, 250.0)
        # Heat lost by the hot stream equals heat gained by the cold one.
        c_hot = 150.0 / 3600.0 * 4181.0  # approx at 50 C
        c_cold = 250.0 / 3600.0 * 4184.0
        assert c_hot * (50.0 - hot_out) == pytest.approx(q, rel=0.02)
        assert c_cold * (cold_out - 20.0) == pytest.approx(q, rel=0.02)

    @given(st.floats(min_value=30.0, max_value=70.0))
    def test_bigger_difference_more_heat(self, hot_in):
        hx = CounterflowHeatExchanger()
        q1 = hx.transferred_heat_w(hot_in, 20.0, 200.0, 200.0)
        q2 = hx.transferred_heat_w(hot_in + 5.0, 20.0, 200.0, 200.0)
        assert q2 > q1

"""Pipe, pump and loop hydraulic tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.thermal.hydraulics import (
    PipeSegment,
    Pump,
    PumpCurve,
    loop_pump_power_w,
    prototype_cold_loop,
    prototype_warm_loop,
)


class TestPipeSegment:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(PhysicalRangeError):
            PipeSegment(length_m=-1.0, diameter_m=0.01)
        with pytest.raises(PhysicalRangeError):
            PipeSegment(length_m=1.0, diameter_m=0.0)
        with pytest.raises(PhysicalRangeError):
            PipeSegment(length_m=1.0, diameter_m=0.01, k_minor=-1.0)

    def test_velocity_scales_linearly_with_flow(self):
        pipe = PipeSegment(length_m=1.0, diameter_m=0.008)
        v1 = pipe.velocity_m_per_s(100.0)
        v2 = pipe.velocity_m_per_s(200.0)
        assert v2 == pytest.approx(2.0 * v1, rel=1e-6)

    def test_prototype_flow_is_laminar_in_tubing(self):
        # 20 L/H in 8 mm tubing: Re ~ 1100 — laminar, as expected for the
        # prototype's small loop.
        pipe = PipeSegment(length_m=1.0, diameter_m=0.008)
        assert pipe.reynolds(20.0) < 2300.0

    def test_high_flow_is_turbulent_in_narrow_plate(self):
        plate = PipeSegment(length_m=0.04, diameter_m=0.004)
        assert plate.reynolds(300.0) > 2300.0

    def test_laminar_friction_factor(self):
        pipe = PipeSegment(length_m=1.0, diameter_m=0.008)
        re = pipe.reynolds(20.0)
        assert pipe.friction_factor(20.0) == pytest.approx(64.0 / re)

    def test_zero_flow_zero_drop(self):
        pipe = PipeSegment(length_m=1.0, diameter_m=0.008, k_minor=5.0)
        assert pipe.pressure_drop_pa(0.0) == 0.0

    def test_negative_flow_rejected(self):
        pipe = PipeSegment(length_m=1.0, diameter_m=0.008)
        with pytest.raises(PhysicalRangeError):
            pipe.pressure_drop_pa(-10.0)

    @given(st.floats(min_value=10.0, max_value=290.0))
    def test_pressure_drop_monotone_in_flow(self, flow):
        pipe = PipeSegment(length_m=1.0, diameter_m=0.006, k_minor=3.0)
        assert (pipe.pressure_drop_pa(flow + 10.0)
                > pipe.pressure_drop_pa(flow))

    def test_minor_losses_add_pressure(self):
        plain = PipeSegment(length_m=1.0, diameter_m=0.006)
        with_fittings = PipeSegment(length_m=1.0, diameter_m=0.006,
                                    k_minor=10.0)
        assert (with_fittings.pressure_drop_pa(100.0)
                > plain.pressure_drop_pa(100.0))

    def test_hot_water_flows_easier(self):
        # Lower viscosity at higher temperature cuts the laminar drop.
        pipe = PipeSegment(length_m=2.0, diameter_m=0.008)
        assert (pipe.pressure_drop_pa(20.0, temp_c=60.0)
                < pipe.pressure_drop_pa(20.0, temp_c=20.0))


class TestPumpCurve:
    def test_peak_at_best_flow(self):
        curve = PumpCurve()
        assert curve.efficiency(curve.best_flow_l_per_h) == pytest.approx(
            curve.best_efficiency)

    def test_efficiency_floor(self):
        curve = PumpCurve()
        assert curve.efficiency(5000.0) == curve.min_efficiency

    def test_invalid_efficiencies_rejected(self):
        with pytest.raises(PhysicalRangeError):
            PumpCurve(best_efficiency=1.5)
        with pytest.raises(PhysicalRangeError):
            PumpCurve(best_efficiency=0.4, min_efficiency=0.5)

    @given(st.floats(min_value=0.0, max_value=2000.0))
    def test_efficiency_bounded(self, flow):
        curve = PumpCurve()
        eff = curve.efficiency(flow)
        assert curve.min_efficiency <= eff <= curve.best_efficiency


class TestPump:
    def test_zero_conditions(self):
        pump = Pump()
        assert pump.electrical_power_w(0.0, 1000.0) == 0.0
        assert pump.electrical_power_w(100.0, 0.0) == 0.0

    def test_negative_head_rejected(self):
        with pytest.raises(PhysicalRangeError):
            Pump().electrical_power_w(100.0, -1.0)

    def test_electrical_exceeds_hydraulic(self):
        pump = Pump()
        flow, head = 200.0, 5000.0
        hydraulic = flow / 1000.0 / 3600.0 * head
        assert pump.electrical_power_w(flow, head) > hydraulic


class TestLoopPower:
    def test_prototype_loops_are_modest(self):
        # The paper's point: pump power is small but not free.  The warm
        # prototype loop at 200 L/H costs tens of watts at most — already
        # an appreciable fraction of what the TEGs generate, which is why
        # the paper deems chasing flow rate "not worth making".
        power = loop_pump_power_w(prototype_warm_loop(), 200.0)
        assert 0.1 < power < 40.0

    def test_grows_superlinearly_with_flow(self):
        loop = prototype_warm_loop()
        p100 = loop_pump_power_w(loop, 100.0)
        p300 = loop_pump_power_w(loop, 300.0)
        assert p300 > 3.0 * p100

    def test_cold_loop_positive(self):
        assert loop_pump_power_w(prototype_cold_loop(), 100.0) > 0.0


class TestProductionManifold:
    def test_far_cheaper_than_bench_loop(self):
        from repro.thermal.hydraulics import production_manifold

        bench = loop_pump_power_w(prototype_warm_loop(), 150.0)
        manifold = loop_pump_power_w(production_manifold(), 150.0)
        # An order of magnitude less per-server pump power.
        assert manifold < bench / 10.0

    def test_still_positive(self):
        from repro.thermal.hydraulics import production_manifold

        assert loop_pump_power_w(production_manifold(), 100.0) > 0.0

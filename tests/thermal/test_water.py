"""Water property correlation tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.thermal import water


class TestDensity:
    def test_near_maximum_at_4c(self):
        assert water.density_kg_per_m3(4.0) == pytest.approx(1000.0, abs=1.0)

    def test_decreases_with_temperature(self):
        assert (water.density_kg_per_m3(20.0)
                > water.density_kg_per_m3(60.0))

    def test_at_60c_reference(self):
        # IAPWS: ~983.2 kg/m^3 at 60 C.
        assert water.density_kg_per_m3(60.0) == pytest.approx(983.2, abs=2.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(PhysicalRangeError):
            water.density_kg_per_m3(150.0)


class TestHeatCapacity:
    def test_reference_value_at_20c(self):
        # ~4184 J/kg/K at 20 C.
        assert water.heat_capacity_j_per_kg_c(20.0) == pytest.approx(
            4184.0, abs=25.0)

    def test_minimum_in_mid_range(self):
        # cp has a shallow minimum between ~30 and 50 C.
        mid = water.heat_capacity_j_per_kg_c(40.0)
        assert mid < water.heat_capacity_j_per_kg_c(5.0)
        assert mid < water.heat_capacity_j_per_kg_c(95.0)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_close_to_paper_constant(self, temp_c):
        # The paper uses cp = 4200 J/kg/K; the correlation must stay
        # within ~1 % of it over the full liquid range.
        assert water.heat_capacity_j_per_kg_c(temp_c) == pytest.approx(
            4200.0, rel=0.012)


class TestViscosity:
    def test_reference_value_at_20c(self):
        # ~1.0 mPa s at 20 C.
        assert water.viscosity_pa_s(20.0) == pytest.approx(1.0e-3, rel=0.03)

    def test_halves_roughly_by_50c(self):
        # ~0.55 mPa s at 50 C.
        assert water.viscosity_pa_s(50.0) == pytest.approx(0.55e-3, rel=0.05)

    @given(st.floats(min_value=0.0, max_value=99.0))
    def test_monotonically_decreasing(self, temp_c):
        assert (water.viscosity_pa_s(temp_c)
                > water.viscosity_pa_s(temp_c + 1.0))


class TestConductivity:
    def test_reference_value_at_25c(self):
        # ~0.61 W/m/K at 25 C.
        assert water.conductivity_w_per_m_k(25.0) == pytest.approx(
            0.61, rel=0.02)

    def test_increases_with_temperature_in_liquid_range(self):
        assert (water.conductivity_w_per_m_k(60.0)
                > water.conductivity_w_per_m_k(20.0))


class TestPropertyBundle:
    def test_prandtl_around_7_at_20c(self):
        props = water.water_properties(20.0)
        assert props.prandtl == pytest.approx(7.0, rel=0.07)

    def test_constant_mode_matches_paper(self):
        props = water.water_properties(40.0, constant=True)
        assert props.density_kg_per_m3 == 1000.0
        assert props.heat_capacity_j_per_kg_c == 4200.0

    def test_kinematic_viscosity(self):
        props = water.water_properties(20.0)
        assert props.kinematic_viscosity_m2_per_s == pytest.approx(
            props.viscosity_pa_s / props.density_kg_per_m3)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_all_properties_positive(self, temp_c):
        props = water.water_properties(temp_c)
        assert props.density_kg_per_m3 > 0
        assert props.heat_capacity_j_per_kg_c > 0
        assert props.viscosity_pa_s > 0
        assert props.conductivity_w_per_m_k > 0

    def test_out_of_range_rejected(self):
        with pytest.raises(PhysicalRangeError):
            water.water_properties(-5.0)

"""Break-even analysis tests — the Sec. V-D arithmetic."""

import math

import pytest

from repro.economics.breakeven import BreakEvenAnalysis
from repro.errors import PhysicalRangeError


@pytest.fixture(scope="module")
def analysis():
    return BreakEvenAnalysis()


class TestPaperArithmetic:
    def test_purchase_price(self, analysis):
        # 100,000 CPUs x 12 TEGs x $1 = $1.2M.
        assert analysis.purchase_price_usd == pytest.approx(1_200_000.0)

    def test_daily_energy(self, analysis):
        # Paper: 10,024.8 kWh/day at 4.177 W per CPU.
        assert analysis.daily_energy_kwh(4.177) == pytest.approx(
            10_024.8, rel=1e-4)

    def test_daily_revenue(self, analysis):
        # Paper: $1,303.2/day.
        assert analysis.daily_revenue_usd(4.177) == pytest.approx(
            1_303.2, rel=1e-3)

    def test_break_even_920_days(self, analysis):
        # Paper: "the break-even point of this system will be 920 days".
        assert analysis.break_even_days(4.177) == pytest.approx(
            920.0, abs=2.0)


class TestBehaviour:
    def test_zero_generation_never_breaks_even(self, analysis):
        assert math.isinf(analysis.break_even_days(0.0))

    def test_more_generation_faster_payback(self, analysis):
        assert analysis.break_even_days(5.0) < analysis.break_even_days(3.0)

    def test_price_scaling(self):
        pricier = BreakEvenAnalysis(teg_unit_price_usd=2.0)
        base = BreakEvenAnalysis()
        assert pricier.break_even_days(4.0) == pytest.approx(
            2.0 * base.break_even_days(4.0))

    def test_fleet_size_cancels(self):
        # Break-even per TEG is independent of fleet size.
        small = BreakEvenAnalysis(n_cpus=1000)
        large = BreakEvenAnalysis(n_cpus=100_000)
        assert small.break_even_days(4.0) == pytest.approx(
            large.break_even_days(4.0))

    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            BreakEvenAnalysis(n_cpus=0)
        with pytest.raises(PhysicalRangeError):
            BreakEvenAnalysis(tegs_per_cpu=-1)
        with pytest.raises(PhysicalRangeError):
            BreakEvenAnalysis().daily_energy_kwh(-1.0)

"""TCO model tests — Table I and Eqs. 21/22 verbatim."""

import pytest

from repro.economics.tco import TcoModel
from repro.errors import PhysicalRangeError


@pytest.fixture(scope="module")
def model():
    return TcoModel()


class TestTableI:
    def test_baseline_tco(self, model):
        # 21.26 + 31.25 + 7.63 + 1.56 = 61.70 $/server/month (Eq. 21).
        assert model.tco_no_teg_usd == pytest.approx(61.70)

    def test_teg_capex(self, model):
        # 12 TEGs x $1 over 25 years = $0.04/month (Table I).
        assert model.teg_capex_usd_per_month == pytest.approx(0.04)

    def test_teg_rev_original(self, model):
        # Table I: $0.34 at 3.694 W.
        assert model.teg_revenue_usd_per_month(3.694) == pytest.approx(
            0.34, abs=0.01)

    def test_teg_rev_loadbalance(self, model):
        # Table I: $0.39 at 4.177 W.
        assert model.teg_revenue_usd_per_month(4.177) == pytest.approx(
            0.39, abs=0.01)


class TestEq22:
    def test_tco_reduction_original(self, model):
        # Paper: TEG_Original reduces TCO by 0.49 %.
        breakdown = model.breakdown(3.694)
        assert breakdown.reduction_fraction == pytest.approx(0.0049,
                                                             abs=0.0003)

    def test_tco_reduction_loadbalance(self, model):
        # Paper: TEG_LoadBalance reduces TCO by 0.57 %.
        breakdown = model.breakdown(4.177)
        assert breakdown.reduction_fraction == pytest.approx(0.0057,
                                                             abs=0.0003)

    def test_tco_h2p_composition(self, model):
        breakdown = model.breakdown(4.0)
        assert breakdown.tco_h2p_usd == pytest.approx(
            breakdown.tco_no_teg_usd + breakdown.teg_capex_usd
            - breakdown.teg_revenue_usd)

    def test_annual_savings_at_paper_scale(self, model):
        # Paper: $350,000-$410,000 a year for 100,000 CPUs.
        low = model.breakdown(3.694).annual_savings_usd(100_000)
        high = model.breakdown(4.177).annual_savings_usd(100_000)
        assert 330_000 < low < 380_000
        assert 390_000 < high < 440_000

    def test_zero_generation_slightly_increases_tco(self, model):
        # Dead TEGs still cost their CapEx.
        breakdown = model.breakdown(0.0)
        assert breakdown.monthly_saving_usd < 0.0


class TestValidation:
    def test_negative_generation_rejected(self, model):
        with pytest.raises(PhysicalRangeError):
            model.teg_revenue_usd_per_month(-1.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(PhysicalRangeError):
            TcoModel(server_capex=-1.0)
        with pytest.raises(PhysicalRangeError):
            TcoModel(tegs_per_server=0)
        with pytest.raises(PhysicalRangeError):
            TcoModel(electricity_price_usd_per_kwh=0.0)

    def test_bad_fleet_size_rejected(self, model):
        with pytest.raises(PhysicalRangeError):
            model.breakdown(4.0).annual_savings_usd(0)


class TestSensitivity:
    def test_higher_tariff_more_savings(self):
        cheap = TcoModel(electricity_price_usd_per_kwh=0.08)
        dear = TcoModel(electricity_price_usd_per_kwh=0.20)
        assert dear.breakdown(4.0).reduction_fraction > \
            cheap.breakdown(4.0).reduction_fraction

    def test_shorter_lifespan_more_capex(self):
        short = TcoModel(teg_lifespan_years=5.0)
        assert short.teg_capex_usd_per_month > \
            TcoModel().teg_capex_usd_per_month

"""PRE / ERE / PUE metric tests."""

import pytest
from hypothesis import given, strategies as st

from repro.economics.metrics import (
    energy_reuse_effectiveness,
    power_reusing_efficiency,
    power_usage_effectiveness,
)
from repro.errors import PhysicalRangeError


class TestPre:
    def test_paper_average(self):
        # 4.177 W over ~29.35 W gives the paper's 14.23 % average PRE.
        assert power_reusing_efficiency(4.177, 29.35) == pytest.approx(
            0.1423, abs=0.001)

    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            power_reusing_efficiency(-1.0, 30.0)
        with pytest.raises(PhysicalRangeError):
            power_reusing_efficiency(4.0, 0.0)

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.1, max_value=1000.0))
    def test_nonnegative(self, gen, cons):
        assert power_reusing_efficiency(gen, cons) >= 0.0


class TestEre:
    def test_no_reuse_equals_pue(self):
        assert energy_reuse_effectiveness(100.0, 30.0, 10.0, 1.0, 0.0) == \
            power_usage_effectiveness(100.0, 30.0, 10.0, 1.0)

    def test_reuse_lowers_ere(self):
        base = energy_reuse_effectiveness(100.0, 30.0, 10.0, 1.0, 0.0)
        reused = energy_reuse_effectiveness(100.0, 30.0, 10.0, 1.0, 20.0)
        assert reused < base

    def test_can_drop_below_one(self):
        # Sec. II-C: "maximizing energy reuse enables the ratio less
        # than 1".
        assert energy_reuse_effectiveness(
            100.0, 10.0, 5.0, 1.0, 30.0) < 1.0

    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            energy_reuse_effectiveness(0.0, 1.0, 1.0, 1.0, 0.0)
        with pytest.raises(PhysicalRangeError):
            energy_reuse_effectiveness(10.0, -1.0, 1.0, 1.0, 0.0)


class TestPue:
    def test_google_class_pue(self):
        # Sec. II-C mentions Google's ~1.1 PUE; with 8 % cooling and 2 %
        # power overhead the metric lands there.
        assert power_usage_effectiveness(100.0, 8.0, 2.0, 1.0) == \
            pytest.approx(1.11)

    def test_at_least_one(self):
        assert power_usage_effectiveness(50.0, 0.0, 0.0, 0.0) == 1.0

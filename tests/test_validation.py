"""Self-audit module tests — including deliberate failure injection."""

import numpy as np
import pytest

from repro.cooling.loop import CirculationState, WaterCirculation
from repro.core.results import SimulationResult, StepRecord
from repro.teg.device import TegDevice, EmpiricalTegFit
from repro.thermal.cpu_model import CoolingSetting
from repro.validation import (
    AuditReport,
    audit_circulation_state,
    audit_simulation_result,
    audit_teg_models,
)


@pytest.fixture
def circulation():
    return WaterCirculation(n_servers=5)


@pytest.fixture
def good_state(circulation):
    return circulation.evaluate(
        np.linspace(0.1, 0.9, 5),
        CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=48.0))


def make_result(records=None):
    result = SimulationResult(scheme="s", trace_name="t", n_servers=10,
                              interval_s=300.0)
    for record in records or []:
        result.append(record)
    return result


def make_record(**overrides):
    base = dict(time_s=0.0, mean_utilisation=0.3, max_utilisation=0.5,
                generation_per_cpu_w=4.0, cpu_power_per_cpu_w=30.0,
                mean_inlet_temp_c=50.0, mean_flow_l_per_h=100.0,
                max_cpu_temp_c=62.0, chiller_power_w=0.0,
                tower_power_w=10.0, pump_power_w=5.0,
                safety_violations=0)
    base.update(overrides)
    return StepRecord(**base)


class TestAuditReport:
    def test_ok_when_empty(self):
        report = AuditReport(subject="x")
        assert report.ok
        assert "[OK]" in str(report)

    def test_issues_accumulate(self):
        report = AuditReport(subject="x")
        report.add("first")
        report.add("second")
        assert not report.ok
        assert "2 issue(s)" in str(report)


class TestCirculationAudit:
    def test_good_state_passes(self, circulation, good_state):
        assert audit_circulation_state(circulation, good_state).ok

    def test_detects_nan_temperature(self, circulation, good_state):
        temps = good_state.cpu_temps_c.copy()
        temps[0] = np.nan
        broken = CirculationState(
            utilisations=good_state.utilisations,
            cpu_temps_c=temps,
            outlet_temps_c=good_state.outlet_temps_c,
            cpu_powers_w=good_state.cpu_powers_w,
            teg_powers_w=good_state.teg_powers_w,
            setting=good_state.setting,
            chiller_power_w=good_state.chiller_power_w,
            tower_power_w=good_state.tower_power_w,
            pump_power_w=good_state.pump_power_w)
        report = audit_circulation_state(circulation, broken)
        assert not report.ok
        assert any("non-finite" in issue for issue in report.issues)

    def test_detects_inverted_outlet(self, circulation, good_state):
        broken = CirculationState(
            utilisations=good_state.utilisations,
            cpu_temps_c=good_state.cpu_temps_c,
            outlet_temps_c=np.full(5, 10.0),  # below the 48 C inlet
            cpu_powers_w=good_state.cpu_powers_w,
            teg_powers_w=good_state.teg_powers_w,
            setting=good_state.setting,
            chiller_power_w=good_state.chiller_power_w,
            tower_power_w=good_state.tower_power_w,
            pump_power_w=good_state.pump_power_w)
        report = audit_circulation_state(circulation, broken)
        assert any("outlet" in issue for issue in report.issues)

    def test_detects_over_unity_teg(self, circulation, good_state):
        broken = CirculationState(
            utilisations=good_state.utilisations,
            cpu_temps_c=good_state.cpu_temps_c,
            outlet_temps_c=good_state.outlet_temps_c,
            cpu_powers_w=good_state.cpu_powers_w,
            teg_powers_w=np.full(5, 500.0),  # absurd output
            setting=good_state.setting,
            chiller_power_w=good_state.chiller_power_w,
            tower_power_w=good_state.tower_power_w,
            pump_power_w=good_state.pump_power_w)
        report = audit_circulation_state(circulation, broken)
        assert any("Carnot" in issue for issue in report.issues)

    def test_detects_negative_facility_power(self, circulation,
                                             good_state):
        broken = CirculationState(
            utilisations=good_state.utilisations,
            cpu_temps_c=good_state.cpu_temps_c,
            outlet_temps_c=good_state.outlet_temps_c,
            cpu_powers_w=good_state.cpu_powers_w,
            teg_powers_w=good_state.teg_powers_w,
            setting=good_state.setting,
            chiller_power_w=-5.0,
            tower_power_w=good_state.tower_power_w,
            pump_power_w=good_state.pump_power_w)
        report = audit_circulation_state(circulation, broken)
        assert any("chiller_power_w" in issue for issue in report.issues)


class TestResultAudit:
    def test_good_run_passes(self, tiny_traces):
        import repro

        result = repro.H2PSystem().evaluate(tiny_traces["common"])
        assert audit_simulation_result(result).ok

    def test_empty_result_flagged(self):
        report = audit_simulation_result(make_result())
        assert not report.ok

    def test_non_monotone_time_flagged(self):
        result = make_result([make_record(time_s=0.0),
                              make_record(time_s=0.0)])
        report = audit_simulation_result(result)
        assert any("time base" in issue for issue in report.issues)

    def test_unrecorded_violation_flagged(self):
        result = make_result([make_record(max_cpu_temp_c=95.0,
                                          safety_violations=0)])
        report = audit_simulation_result(result)
        assert any("no violation was recorded" in issue
                   for issue in report.issues)

    def test_absurd_pre_flagged(self):
        result = make_result([make_record(generation_per_cpu_w=50.0,
                                          cpu_power_per_cpu_w=30.0)])
        report = audit_simulation_result(result)
        assert any("PRE" in issue for issue in report.issues)


class TestTegModelAudit:
    def test_paper_device_consistent(self):
        assert audit_teg_models().ok

    def test_corrupted_fit_detected(self):
        # A fit with triple the real slope no longer matches the physics.
        corrupted = TegDevice(fit=EmpiricalTegFit(
            voc_slope_v_per_c=0.15))
        report = audit_teg_models(corrupted)
        assert not report.ok
        assert any("Voc disagreement" in issue
                   for issue in report.issues)

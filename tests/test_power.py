"""Rack DC-bus integration tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PhysicalRangeError
from repro.power import RackPowerSystem
from repro.storage.battery import Battery
from repro.storage.hybrid import HybridEnergyBuffer
from repro.storage.supercap import SuperCapacitor


def small_rack(**overrides):
    defaults = dict(n_servers=20, lighting_w=15.0)
    defaults.update(overrides)
    return RackPowerSystem(**defaults)


class TestValidation:
    def test_bad_construction(self):
        with pytest.raises(PhysicalRangeError):
            RackPowerSystem(n_servers=0)
        with pytest.raises(PhysicalRangeError):
            RackPowerSystem(lighting_w=-1.0)
        with pytest.raises(PhysicalRangeError):
            RackPowerSystem(module_voltage_v=0.0)

    def test_bad_profiles(self):
        rack = small_rack()
        with pytest.raises(PhysicalRangeError):
            rack.simulate(np.array([]), 300.0)
        with pytest.raises(PhysicalRangeError):
            rack.simulate(np.array([-1.0]), 300.0)
        with pytest.raises(PhysicalRangeError):
            rack.simulate(np.array([4.0]), 0.0)
        with pytest.raises(ConfigurationError):
            rack.simulate(np.array([4.0, 4.0]), 300.0,
                          tec_power_w=np.array([1.0]))
        with pytest.raises(PhysicalRangeError):
            rack.simulate(np.array([4.0]), 300.0,
                          tec_power_w=np.array([-1.0]))


class TestEnergyFlows:
    def test_rack_fully_powers_lighting(self):
        # ~4 W x 20 servers >> 15 W of LEDs: the Sec. VI-C2 claim at
        # rack scale.
        rack = small_rack()
        telemetry = rack.simulate(np.full(50, 4.2), 300.0)
        assert telemetry.self_powered_fraction == pytest.approx(1.0)
        assert telemetry.grid_w.sum() == pytest.approx(0.0)

    def test_conversion_losses_applied(self):
        rack = small_rack()
        telemetry = rack.simulate(np.full(10, 4.0), 300.0)
        assert 0.7 < telemetry.conversion_efficiency < 1.0
        assert np.all(telemetry.bus_w <= telemetry.harvested_w)

    def test_surplus_exported_by_default(self):
        rack = small_rack()
        telemetry = rack.simulate(np.full(50, 4.2), 300.0)
        assert telemetry.exported_kwh > 0.0
        assert telemetry.curtailment_fraction == 0.0

    def test_no_export_mode_curtails(self):
        rack = small_rack(export_surplus=False)
        telemetry = rack.simulate(np.full(50, 4.2), 300.0)
        assert telemetry.curtailment_fraction > 0.0
        assert telemetry.exported_kwh == 0.0

    def test_tec_bursts_still_covered(self):
        rack = small_rack()
        generation = np.full(40, 4.2)
        tec = np.zeros(40)
        tec[10:14] = 60.0  # a hot-spot episode on the rack
        telemetry = rack.simulate(generation, 300.0, tec)
        assert telemetry.self_powered_fraction > 0.95

    def test_sustained_overload_needs_grid(self):
        rack = small_rack(
            buffer=HybridEnergyBuffer(
                battery=Battery(capacity_wh=1.0, soc=0.1),
                supercap=SuperCapacitor(capacity_wh=0.2, soc=0.1)))
        generation = np.full(50, 1.0)  # feeble harvest
        tec = np.full(50, 100.0)       # constant heavy TEC load
        telemetry = rack.simulate(generation, 300.0, tec)
        assert telemetry.self_powered_fraction < 0.5
        assert telemetry.grid_w.sum() > 0.0

    def test_zero_load_is_trivially_covered(self):
        rack = small_rack(lighting_w=0.0)
        telemetry = rack.simulate(np.full(5, 4.0), 300.0)
        assert telemetry.self_powered_fraction == 1.0


class TestLightingCapacity:
    def test_budget_in_leds(self):
        rack = small_rack(lighting_w=15.0)
        assert rack.lighting_capacity() == 300  # 15 W / 0.05 W


class TestEndToEnd:
    def test_with_simulator_output(self, tiny_traces):
        import repro

        result = repro.H2PSystem().evaluate(
            tiny_traces["common"], repro.teg_loadbalance())
        rack = small_rack()
        telemetry = rack.simulate(result.generation_series_w,
                                  tiny_traces["common"].interval_s)
        assert telemetry.self_powered_fraction > 0.99
        # The surplus is substantial: a rack's TEGs do far more than
        # light it.
        assert telemetry.exported_kwh > 0.0

"""CLI tests (the ``h2p`` console script)."""

import pytest

from repro.cli import main


class TestParser:
    def test_no_command_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code != 0

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "h2p" in capsys.readouterr().out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_trace_choice_errors(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--trace", "bursty"])


class TestSimulate:
    def test_runs_and_reports(self, capsys):
        code = main(["simulate", "--trace", "common", "--servers", "40",
                     "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "TEG_Original" in out
        assert "TEG_LoadBalance" in out
        assert "improvement" in out

    def test_circulation_size_forwarded(self, capsys):
        code = main(["simulate", "--trace", "common", "--servers", "40",
                     "--circulation-size", "10", "--seed", "3"])
        assert code == 0


class TestDesign:
    def test_reports_optimum(self, capsys):
        code = main(["design", "--servers", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal circulation size" in out
        assert "<- optimum" in out


class TestTco:
    def test_paper_numbers(self, capsys):
        code = main(["tco", "--generation", "4.177",
                     "--cpus", "100000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0.57%" in out
        assert "10,024.8 kWh" in out

    def test_zero_generation(self, capsys):
        code = main(["tco", "--generation", "0.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "inf" in out.lower()


class TestTrace:
    def test_stats_only(self, capsys):
        code = main(["trace", "--name", "irregular", "--servers", "10",
                     "--hours", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean=" in out

    def test_export_round_trips(self, tmp_path, capsys):
        from repro.workloads.loader import load_trace_csv

        path = tmp_path / "t.csv"
        code = main(["trace", "--name", "common", "--servers", "10",
                     "--hours", "2", "--seed", "4", "--out", str(path)])
        assert code == 0
        trace = load_trace_csv(path)
        assert trace.n_servers == 10
        assert trace.name == "common"


class TestHotspot:
    def test_reports_three_strategies(self, capsys):
        code = main(["hotspot"])
        out = capsys.readouterr().out
        assert code == 0
        for strategy in ("none", "chiller", "tec"):
            assert strategy in out
        assert "VIOLATION" in out
        assert "safe" in out

    def test_cold_inlet_all_safe(self, capsys):
        code = main(["hotspot", "--inlet", "38"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VIOLATION" not in out


class TestBatchCheckpoint:
    ARGS = ["batch", "--traces", "common", "--schemes", "original",
            "--servers", "40", "--workers", "1", "--mode", "kernel",
            "--shard", "--shard-steps", "12"]

    def test_resume_requires_checkpoint(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError,
                           match="requires --checkpoint"):
            main(["batch", "--traces", "common", "--servers", "40",
                  "--resume"])

    def test_checkpoint_then_resume_reports_skipped_work(
            self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(self.ARGS + ["--checkpoint", ckpt]) == 0
        assert "resumed from checkpoint" not in capsys.readouterr().out
        assert main(self.ARGS + ["--checkpoint", ckpt, "--resume"]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().out

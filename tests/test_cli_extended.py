"""Tests for the reuse/audit/classify CLI surfaces."""

import pytest

from repro.cli import main


class TestTraceClassify:
    def test_classify_flag(self, capsys):
        code = main(["trace", "--name", "common", "--servers", "60",
                     "--classify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "classified as: common" in out
        assert "volatility=" in out


class TestReuse:
    def test_tropical_climate(self, capsys):
        code = main(["reuse", "--climate", "singapore",
                     "--servers", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "district heating" in out
        assert "H2P" in out
        assert "CCHP" in out
        assert "0 heating hours" in out

    def test_cold_climate_has_heating_hours(self, capsys):
        code = main(["reuse", "--climate", "stockholm"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 heating hours" not in out

    def test_bad_climate_rejected(self):
        with pytest.raises(SystemExit):
            main(["reuse", "--climate", "mars"])


class TestAudit:
    def test_all_audits_pass(self, capsys):
        code = main(["audit", "--servers", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("[OK]") == 3


class TestFleetCommand:
    def test_reports_all_specs(self, capsys):
        code = main(["fleet", "--servers", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Xeon E5-2650 v3" in out
        assert "EPYC" in out
        assert "fleet:" in out


class TestSeasonalCommand:
    def test_twelve_months_reported(self, capsys):
        code = main(["seasonal", "--servers", "30"])
        out = capsys.readouterr().out
        assert code == 0
        for month in ("Jan", "Jun", "Dec"):
            assert month in out
        assert "annual mean" in out

    def test_bad_climate_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["seasonal", "--climate", "atlantis"])

"""Power-electronics tests: converter, resistance drift, MPPT."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.teg.power_electronics import (
    DcDcConverter,
    MpptHarvester,
    ThermalResistanceDrift,
)


class TestDcDcConverter:
    def test_validation(self):
        with pytest.raises(PhysicalRangeError):
            DcDcConverter(rated_power_w=0.0)
        with pytest.raises(PhysicalRangeError):
            DcDcConverter(peak_efficiency=1.5)
        with pytest.raises(PhysicalRangeError):
            DcDcConverter(light_load_penalty=0.95)

    def test_efficiency_peaks_at_rated(self):
        converter = DcDcConverter()
        assert converter.efficiency(converter.rated_power_w) > \
            converter.efficiency(converter.rated_power_w / 20.0)

    def test_efficiency_bounded(self):
        converter = DcDcConverter()
        for power in (0.01, 0.5, 2.0, 6.0, 20.0):
            assert 0.0 < converter.efficiency(power) \
                <= converter.peak_efficiency

    def test_zero_input_zero_efficiency(self):
        assert DcDcConverter().efficiency(0.0) == 0.0

    def test_undervoltage_lockout(self):
        # A single TEG's ~1 V cannot start the converter: the paper's
        # rationale for collecting in series (Sec. III-C).
        converter = DcDcConverter(min_input_voltage_v=1.0)
        assert converter.output_power_w(0.5, 0.6) == 0.0
        assert converter.output_power_w(0.5, 3.0) > 0.0

    def test_output_below_input(self):
        converter = DcDcConverter()
        assert converter.output_power_w(4.0, 6.0) < 4.0

    def test_negative_inputs_rejected(self):
        converter = DcDcConverter()
        with pytest.raises(PhysicalRangeError):
            converter.efficiency(-1.0)
        with pytest.raises(PhysicalRangeError):
            converter.output_power_w(1.0, -1.0)


class TestResistanceDrift:
    def test_reference_is_nameplate(self):
        drift = ThermalResistanceDrift()
        assert drift.resistance_ohm(24.0, 25.0) == pytest.approx(24.0)

    def test_hotter_means_more_resistance(self):
        drift = ThermalResistanceDrift()
        assert drift.resistance_ohm(24.0, 45.0) > 24.0

    def test_floor_prevents_nonphysical_values(self):
        drift = ThermalResistanceDrift(coeff_per_c=0.01)
        assert drift.resistance_ohm(24.0, -300.0) == pytest.approx(2.4)

    def test_invalid_nameplate_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ThermalResistanceDrift().resistance_ohm(0.0, 40.0)


class TestMpptHarvester:
    @pytest.fixture
    def operating_day(self):
        t = np.linspace(0.0, 1.0, 96)
        deltas = 32.0 + 4.0 * np.sin(2 * np.pi * t)
        means = 40.0 + 8.0 * np.sin(2 * np.pi * t)
        return deltas, means

    def test_validation(self, operating_day):
        harvester = MpptHarvester()
        deltas, means = operating_day
        with pytest.raises(PhysicalRangeError):
            harvester.run(deltas, means[:-1])
        with pytest.raises(PhysicalRangeError):
            harvester.run(deltas, means, policy="magic")
        with pytest.raises(PhysicalRangeError):
            MpptHarvester(step_ohm=0.0)

    def test_point_power_maximised_at_internal_resistance(self):
        harvester = MpptHarvester()
        optimal = harvester.optimal_load_ohm(32.0, 45.0)
        best = harvester.harvested_power_w(32.0, 45.0, optimal)
        for load in (optimal * 0.7, optimal * 1.3):
            assert harvester.harvested_power_w(32.0, 45.0, load) <= best

    def test_optimal_load_drifts_with_temperature(self):
        harvester = MpptHarvester()
        assert harvester.optimal_load_ohm(32.0, 55.0) > \
            harvester.optimal_load_ohm(32.0, 25.0)

    def test_oracle_upper_bounds_everything(self, operating_day):
        harvester = MpptHarvester()
        deltas, means = operating_day
        oracle = harvester.run(deltas, means, "oracle")
        fixed = harvester.run(deltas, means, "fixed")
        mppt = harvester.run(deltas, means, "mppt")
        assert oracle["harvested_total_w"] >= fixed["harvested_total_w"]
        assert oracle["harvested_total_w"] >= mppt["harvested_total_w"]

    def test_fixed_is_near_optimal(self, operating_day):
        # The honest result: a linear source loses only quadratically to
        # resistance drift — fixed matched load is within 1 % of oracle.
        harvester = MpptHarvester()
        deltas, means = operating_day
        oracle = harvester.run(deltas, means, "oracle")
        fixed = harvester.run(deltas, means, "fixed")
        gap = (oracle["harvested_total_w"] - fixed["harvested_total_w"]) \
            / oracle["harvested_total_w"]
        assert 0.0 <= gap < 0.01

    def test_bus_power_below_harvested(self, operating_day):
        harvester = MpptHarvester()
        deltas, means = operating_day
        result = harvester.run(deltas, means, "fixed")
        assert np.all(result["bus_w"] <= result["harvested_w"] + 1e-12)

    def test_load_trajectory_recorded(self, operating_day):
        harvester = MpptHarvester()
        deltas, means = operating_day
        result = harvester.run(deltas, means, "mppt")
        assert result["load_ohm"].shape == deltas.shape
        assert np.all(result["load_ohm"] > 0.0)

    @given(st.floats(min_value=0.0, max_value=40.0),
           st.floats(min_value=20.0, max_value=60.0))
    def test_power_nonnegative(self, delta, mean):
        harvester = MpptHarvester()
        assert harvester.harvested_power_w(delta, mean, 24.0) >= 0.0

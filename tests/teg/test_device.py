"""Single-TEG device tests, anchored to Eqs. 1, 3, 5 and 6."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.teg.device import (
    EmpiricalTegFit,
    PAPER_TEG,
    TegDevice,
    matched_load_power_w,
)
from repro.teg.materials import HEUSLER_FE2VAL

deltas = st.floats(min_value=0.0, max_value=60.0)


class TestEmpiricalFit:
    """Eq. 3 and Eq. 6 verbatim."""

    def test_voc_at_25c(self):
        # v = 0.0448*25 - 0.0051 = 1.1149 V.
        assert EmpiricalTegFit().open_circuit_voltage_v(25.0) == \
            pytest.approx(1.1149)

    def test_voc_floored_at_zero(self):
        # The fit's negative intercept cannot mean negative voltage.
        assert EmpiricalTegFit().open_circuit_voltage_v(0.05) == 0.0

    def test_pmax_at_25c(self):
        # P = 0.0003*625 - 0.0003*25 + 0.0011 = 0.1811 W.
        assert EmpiricalTegFit().max_power_w(25.0) == pytest.approx(0.1811)

    def test_pmax_zero_at_zero_delta(self):
        assert EmpiricalTegFit().max_power_w(0.0) == 0.0

    def test_negative_delta_rejected(self):
        with pytest.raises(PhysicalRangeError):
            EmpiricalTegFit().open_circuit_voltage_v(-1.0)
        with pytest.raises(PhysicalRangeError):
            EmpiricalTegFit().max_power_w(-1.0)

    @given(deltas)
    def test_outputs_never_negative(self, delta):
        fit = EmpiricalTegFit()
        assert fit.open_circuit_voltage_v(delta) >= 0.0
        assert fit.max_power_w(delta) >= 0.0

    @given(st.floats(min_value=1.0, max_value=59.0))
    def test_voc_linear(self, delta):
        fit = EmpiricalTegFit()
        v1 = fit.open_circuit_voltage_v(delta)
        v2 = fit.open_circuit_voltage_v(delta + 1.0)
        assert v2 - v1 == pytest.approx(0.0448, abs=1e-9)

    def test_vectorised(self):
        fit = EmpiricalTegFit()
        deltas_arr = np.array([0.0, 10.0, 25.0])
        voc = fit.open_circuit_voltage_v(deltas_arr)
        pmax = fit.max_power_w(deltas_arr)
        assert voc.shape == pmax.shape == (3,)
        assert pmax[0] == 0.0


class TestTegDevice:
    def test_paper_device_defaults(self):
        assert PAPER_TEG.resistance_ohm == 2.0
        assert PAPER_TEG.mode == "empirical"

    def test_invalid_construction_rejected(self):
        with pytest.raises(PhysicalRangeError):
            TegDevice(resistance_ohm=0.0)
        with pytest.raises(PhysicalRangeError):
            TegDevice(n_couples=0)
        with pytest.raises(PhysicalRangeError):
            TegDevice(mode="mystery")

    def test_ambient_range_check(self):
        PAPER_TEG.check_ambient(50.0)
        with pytest.raises(PhysicalRangeError):
            PAPER_TEG.check_ambient(150.0)

    def test_physical_mode_eq1(self):
        # Eq. 1: Voc = n * alpha * dT.
        device = TegDevice(mode="physical")
        expected = 127 * device.material.seebeck_v_per_k * 20.0
        assert device.open_circuit_voltage_v(20.0) == pytest.approx(expected)

    def test_modes_agree_roughly(self):
        # The paper's fit and first-principles Seebeck must agree ~15 %.
        physical = TegDevice(mode="physical")
        for delta in (10.0, 20.0, 30.0):
            assert physical.open_circuit_voltage_v(delta) == pytest.approx(
                PAPER_TEG.open_circuit_voltage_v(delta), rel=0.2)

    def test_matched_load_maximises_power(self):
        delta = 25.0
        matched = PAPER_TEG.power_at_load_w(delta, PAPER_TEG.resistance_ohm)
        for load in (0.5, 1.0, 3.0, 5.0):
            assert PAPER_TEG.power_at_load_w(delta, load) <= matched + 1e-12

    def test_max_power_physical_is_voc_squared_over_4r(self):
        device = TegDevice(mode="physical")
        delta = 30.0
        voc = device.open_circuit_voltage_v(delta)
        assert device.max_power_w(delta) == pytest.approx(
            voc ** 2 / 8.0)  # 4R with R = 2

    def test_current_zero_at_zero_delta(self):
        assert PAPER_TEG.current_a(0.0, 2.0) == 0.0

    def test_negative_load_rejected(self):
        with pytest.raises(PhysicalRangeError):
            PAPER_TEG.current_a(10.0, -1.0)

    def test_thermal_resistance_is_high(self):
        # Sec. III-B: TEGs are "almost adiabatic" — orders of magnitude
        # worse than a copper cold plate (~0.05 K/W).
        assert PAPER_TEG.thermal_resistance_k_per_w > 1.0

    def test_heat_through_positive(self):
        assert PAPER_TEG.heat_through_w(50.0, 20.0) > 0.0

    def test_heat_through_ordering_rejected(self):
        with pytest.raises(PhysicalRangeError):
            PAPER_TEG.heat_through_w(20.0, 50.0)

    def test_conversion_efficiency_low(self):
        # Sec. VI-D: ~5 % for Bi2Te3; at H2P's modest gradients even less.
        eff = PAPER_TEG.conversion_efficiency(55.0, 20.0)
        assert 0.0 < eff < 0.08

    def test_with_material_switches_mode(self):
        upgraded = PAPER_TEG.with_material(HEUSLER_FE2VAL)
        assert upgraded.mode == "physical"
        assert upgraded.material is HEUSLER_FE2VAL
        # Higher Seebeck coefficient means more voltage.
        assert (upgraded.open_circuit_voltage_v(25.0)
                > PAPER_TEG.open_circuit_voltage_v(25.0))

    @given(deltas)
    def test_power_nonnegative_any_mode(self, delta):
        for device in (PAPER_TEG, TegDevice(mode="physical")):
            assert device.max_power_w(delta) >= 0.0


class TestMatchedLoadHelper:
    def test_eq5(self):
        # P = (v/2)^2 / R.
        assert matched_load_power_w(2.0, 2.0) == pytest.approx(0.5)

    def test_invalid_resistance_rejected(self):
        with pytest.raises(PhysicalRangeError):
            matched_load_power_w(1.0, 0.0)

"""Thermoelectric material library tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.teg.materials import (
    BISMUTH_TELLURIDE,
    HEUSLER_FE2VAL,
    MATERIALS,
    NANOSTRUCTURED_BULK,
    ThermoelectricMaterial,
)


class TestRegistry:
    def test_contains_paper_materials(self):
        assert "Bi2Te3" in MATERIALS
        assert "Fe2V0.8W0.2Al" in MATERIALS

    def test_three_generations(self):
        assert len(MATERIALS) >= 3


class TestFigureOfMerit:
    def test_bi2te3_zt_near_one(self):
        # Sec. VI-D: ZT ~ 1 at 300-330 K for the deployed material.
        assert BISMUTH_TELLURIDE.zt(40.0) == pytest.approx(1.0, rel=0.15)

    def test_heusler_zt_near_six(self):
        # Sec. VI-D: Heusler thin films reach ZT ~ 6 around 360 K (87 C).
        assert HEUSLER_FE2VAL.zt(87.0) == pytest.approx(6.0, rel=0.15)

    def test_nanostructured_in_between(self):
        zt = NANOSTRUCTURED_BULK.zt(47.0)
        assert BISMUTH_TELLURIDE.zt(47.0) < zt < HEUSLER_FE2VAL.zt(47.0)

    def test_zt_grows_with_temperature(self):
        assert BISMUTH_TELLURIDE.zt(80.0) > BISMUTH_TELLURIDE.zt(20.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PhysicalRangeError):
            ThermoelectricMaterial("bad", seebeck_v_per_k=0.0,
                                   electrical_conductivity_s_per_m=1e5,
                                   thermal_conductivity_w_per_m_k=1.0)
        with pytest.raises(PhysicalRangeError):
            ThermoelectricMaterial("bad", seebeck_v_per_k=4e-4,
                                   electrical_conductivity_s_per_m=-1.0,
                                   thermal_conductivity_w_per_m_k=1.0)


class TestEfficiency:
    def test_bi2te3_efficiency_near_5_percent(self):
        # Sec. VI-D: conversion efficiency ~ 5 % for Bi2Te3.  At the H2P
        # operating point (warm ~50 C vs cold 20 C) the achievable
        # fraction is a couple of percent; at a hotter source it reaches 5.
        eff = BISMUTH_TELLURIDE.conversion_efficiency(150.0, 20.0)
        assert 0.03 < eff < 0.08

    def test_zero_without_gradient(self):
        assert BISMUTH_TELLURIDE.conversion_efficiency(30.0, 30.0) == 0.0
        assert BISMUTH_TELLURIDE.conversion_efficiency(20.0, 30.0) == 0.0

    def test_below_carnot(self):
        hot, cold = 55.0, 20.0
        carnot = 1.0 - (cold + 273.15) / (hot + 273.15)
        assert BISMUTH_TELLURIDE.conversion_efficiency(hot, cold) < carnot

    def test_better_material_more_efficient(self):
        hot, cold = 55.0, 20.0
        assert (HEUSLER_FE2VAL.conversion_efficiency(hot, cold)
                > BISMUTH_TELLURIDE.conversion_efficiency(hot, cold))

    @given(st.floats(min_value=25.0, max_value=95.0))
    def test_carnot_fraction_bounded(self, hot):
        frac = BISMUTH_TELLURIDE.carnot_fraction(hot, 20.0)
        assert 0.0 < frac < 1.0

"""Placement study tests — the Fig. 3 reproduction."""

import numpy as np
import pytest

from repro.constants import CPU_MAX_OPERATING_TEMP_C
from repro.errors import PhysicalRangeError
from repro.teg.placement import FIG3_PHASES, PlacementStudy


@pytest.fixture(scope="module")
def outcome():
    return PlacementStudy().run()


class TestFig3Reproduction:
    def test_phases_cover_50_minutes(self):
        assert sum(d for d, _ in FIG3_PHASES) == pytest.approx(3000.0)

    def test_sandwiched_cpu_approaches_limit(self, outcome):
        # Fig. 3: CPU0 is "very close to the maximum operating
        # temperature at a load of 20 %".
        assert outcome.sandwiched_near_limit
        assert outcome.peak_sandwiched_cpu_c \
            <= CPU_MAX_OPERATING_TEMP_C + 2.0

    def test_direct_cpu_stays_cool(self, outcome):
        # CPU1 (no TEG) stays within a few degrees of the coolant.
        assert outcome.peak_direct_cpu_c < 45.0

    def test_large_penalty(self, outcome):
        # The TEG sandwich costs tens of degrees of headroom.
        assert outcome.temperature_penalty_c > 25.0

    def test_voltage_tracks_cpu_temperature(self, outcome):
        # "The variation of voltage accords with CPU0's temperature."
        cpu = outcome.sandwiched.temperatures_c["cpu"]
        corr = np.corrcoef(cpu, outcome.teg_voltage_v)[0, 1]
        assert corr > 0.95

    def test_voltage_order_of_magnitude(self, outcome):
        # dT across the TEG peaks ~40 C -> Voc ~ 1.8 V for one device.
        assert 1.0 < outcome.teg_voltage_v.max() < 3.0

    def test_temperature_returns_toward_coolant(self, outcome):
        # The final 0 %-load phase cools CPU0 back down.
        cpu = outcome.sandwiched.temperatures_c["cpu"]
        assert cpu[-1] < outcome.peak_sandwiched_cpu_c - 10.0

    def test_phases_visible_in_trace(self, outcome):
        # Temperature at the end of the 10 % phase is strictly between
        # the idle and the 20 %-phase peaks ("twists and turns").
        times = outcome.times_s
        cpu = outcome.sandwiched.temperatures_c["cpu"]
        end_phase1 = cpu[times <= 750.0][-1]
        end_phase2 = cpu[times <= 1500.0][-1]
        end_phase3 = cpu[times <= 2250.0][-1]
        assert end_phase1 < end_phase2 < end_phase3


class TestOutletAlternative:
    def test_outlet_design_generates(self):
        study = PlacementStudy()
        assert study.outlet_generation_w(52.0) > 2.0

    def test_outlet_design_does_not_heat_cpu(self):
        # The whole point of the outlet placement: CPU cooling path is
        # untouched, so its temperature equals the direct configuration.
        outcome = PlacementStudy().run()
        assert outcome.peak_direct_cpu_c < 45.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PhysicalRangeError):
            PlacementStudy(plate_resistance_k_per_w=0.0)
        with pytest.raises(PhysicalRangeError):
            PlacementStudy(cpu_capacity_j_per_k=-1.0)

    def test_custom_phases(self):
        outcome = PlacementStudy().run(
            phases=[(300.0, 0.0), (300.0, 0.5)], output_dt_s=10.0)
        assert outcome.times_s[-1] == pytest.approx(600.0)
        # Half load through the TEG sandwich is far beyond the limit.
        assert outcome.peak_sandwiched_cpu_c > CPU_MAX_OPERATING_TEMP_C

"""TEG string/module tests — Fig. 7, Fig. 8 and Eqs. 4/7."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import PhysicalRangeError
from repro.teg.device import PAPER_TEG
from repro.teg.module import (
    REFERENCE_FLOW_L_PER_H,
    TegModule,
    TegString,
    default_server_module,
    flow_coupling,
)

deltas = st.floats(min_value=0.0, max_value=50.0)


class TestFlowCoupling:
    """The Fig. 7 flow effect: present but small."""

    def test_unity_at_reference_flow(self):
        assert flow_coupling(REFERENCE_FLOW_L_PER_H) == pytest.approx(1.0)

    def test_lower_flow_lower_coupling(self):
        assert flow_coupling(50.0) < 1.0

    def test_higher_flow_slightly_better(self):
        assert 1.0 < flow_coupling(300.0) < 1.02

    def test_effect_is_small_across_prototype_range(self):
        # "This improvement may be too little to be worth making": the
        # whole 50-300 L/H sweep moves the voltage by under ten percent.
        spread = flow_coupling(300.0) - flow_coupling(50.0)
        assert 0.0 < spread < 0.10

    def test_invalid_flow_rejected(self):
        with pytest.raises(PhysicalRangeError):
            flow_coupling(0.0)

    @given(st.floats(min_value=10.0, max_value=295.0))
    def test_monotone(self, flow):
        assert flow_coupling(flow + 5.0) > flow_coupling(flow)


class TestTegString:
    """Eqs. 4 and 7: everything scales linearly with n."""

    def test_resistance_scales(self):
        assert TegString(count=6).resistance_ohm == pytest.approx(12.0)

    def test_voc_n_times_single(self):
        # Eq. 4 exactly: Voc_n = n * v.
        string = TegString(count=6)
        single = PAPER_TEG.open_circuit_voltage_v(20.0)
        assert string.open_circuit_voltage_v(20.0) == pytest.approx(
            6.0 * single)

    def test_pmax_n_times_single(self):
        # Eq. 7 exactly: Pmax_n = n * Pmax_1.
        string = TegString(count=12)
        single = PAPER_TEG.max_power_w(20.0)
        assert string.max_power_w(20.0) == pytest.approx(12.0 * single)

    def test_fig8_series_scaling(self):
        # Fig. 8: at a given dT, voltage and power are proportional to n.
        v = {n: TegString(count=n).open_circuit_voltage_v(15.0)
             for n in (1, 3, 6, 12)}
        assert v[3] == pytest.approx(3 * v[1])
        assert v[12] == pytest.approx(2 * v[6])

    def test_fig8_power_higher_than_1_8w_at_25c(self):
        # Paper: "the maximum output power of 12 TEGs can be higher than
        # 1.8 W" beyond dT = 25 C.
        assert TegString(count=12).max_power_w(25.0) > 1.8

    def test_invalid_count_rejected(self):
        with pytest.raises(PhysicalRangeError):
            TegString(count=0)

    def test_matched_operating_point(self):
        string = TegString(count=6)
        op = string.matched_operating_point(20.0)
        # At the matched load the terminal voltage is half of Voc.
        assert op.voltage_v == pytest.approx(
            string.open_circuit_voltage_v(20.0) / 2.0)
        # The paper fitted Eq. 3 (voltage) and Eq. 6 (power) from
        # independent measurement campaigns, so the circuit-derived power
        # (Voc^2/4R) and the quadratic fit disagree by ~15 %.  The string
        # must honour both views within that band.
        assert op.power_w == pytest.approx(string.max_power_w(20.0),
                                           rel=0.2)

    def test_operating_point_open_circuit(self):
        string = TegString(count=6)
        op = string.operating_point(20.0, load_ohm=0.0)
        assert op.power_w == 0.0  # short circuit delivers no power

    def test_arbitrary_load_below_matched(self):
        string = TegString(count=6)
        matched = string.max_power_w(20.0)
        for load in (2.0, 6.0, 24.0, 100.0):
            assert string.operating_point(20.0, load).power_w <= matched

    def test_flow_modulates_voltage(self):
        string = TegString(count=6)
        slow = string.open_circuit_voltage_v(20.0, flow_l_per_h=50.0)
        fast = string.open_circuit_voltage_v(20.0, flow_l_per_h=300.0)
        assert slow < fast

    def test_negative_delta_rejected(self):
        with pytest.raises(PhysicalRangeError):
            TegString(count=6).open_circuit_voltage_v(-1.0)

    @given(deltas, st.integers(min_value=1, max_value=24))
    def test_linearity_property(self, delta, n):
        string = TegString(count=n)
        assert string.max_power_w(delta) == pytest.approx(
            n * PAPER_TEG.max_power_w(delta), rel=1e-12)


class TestTegModule:
    def test_prototype_has_12_tegs(self):
        module = default_server_module()
        assert module.teg_count == 12
        assert module.group_size == 6
        assert module.group_count == 2

    def test_module_equals_string_of_12(self):
        module = default_server_module()
        assert module.max_power_w(25.0) == pytest.approx(
            TegString(count=12).max_power_w(25.0))

    def test_generation_uses_eq2(self):
        # delta_T = T_warm_out - T_cold (Eq. 2).
        module = default_server_module()
        assert module.generation_w(52.0, 20.0) == pytest.approx(
            module.max_power_w(32.0))

    def test_generation_zero_when_cold(self):
        module = default_server_module()
        assert module.generation_w(15.0, 20.0) == 0.0

    def test_generation_vectorised(self):
        module = default_server_module()
        outs = np.array([45.0, 50.0, 55.0])
        gen = module.generation_w(outs, 20.0, 100.0)
        assert gen.shape == (3,)
        assert np.all(np.diff(gen) > 0)

    def test_paper_headline_magnitude(self):
        # At the evaluated operating region (outlet ~54 C vs 20 C natural
        # water) one server's module produces ~4 W — the paper's headline.
        module = default_server_module()
        assert 3.5 < module.generation_w(54.5, 20.0, 150.0) < 5.0

    def test_heat_harvested_positive(self):
        module = default_server_module()
        assert module.heat_harvested_w(50.0, 20.0) > 0.0
        assert module.heat_harvested_w(15.0, 20.0) == 0.0

    def test_generation_efficiency_consistency(self):
        # Electrical output never exceeds the harvested heat.
        module = default_server_module()
        power = module.generation_w(55.0, 20.0)
        heat = module.heat_harvested_w(55.0, 20.0)
        assert 0.0 < power < heat

    def test_invalid_geometry_rejected(self):
        with pytest.raises(PhysicalRangeError):
            TegModule(group_size=0)
        with pytest.raises(PhysicalRangeError):
            TegModule(group_count=-1)

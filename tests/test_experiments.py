"""Experiment-registry tests."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentOutcome,
    list_experiments,
    run_experiment,
)


class TestRegistry:
    def test_lists_all_paper_experiments(self):
        ids = [experiment_id for experiment_id, _ in list_experiments()]
        for required in ("E-F3", "E-F7", "E-F8", "E-F9", "E-F10",
                         "E-F11", "E-F13", "E-F14", "E-F15", "E-T1",
                         "E-VA"):
            assert required in ids

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("E-F99")

    def test_case_insensitive(self):
        outcome = run_experiment("e-t1")
        assert outcome.experiment_id == "E-T1"


class TestOutcomes:
    def test_table1_metrics(self):
        outcome = run_experiment("E-T1")
        assert outcome.metrics["break_even_days"] == pytest.approx(
            920.8, abs=0.5)
        assert outcome.metrics["reduction_loadbalance"] == pytest.approx(
            0.0057, abs=3e-4)

    def test_fig8_metrics(self):
        outcome = run_experiment("E-F8")
        assert outcome.metrics["pmax_12_at_dt25_w"] > 1.8
        assert "power_w" in outcome.series

    def test_fig13_ordering(self):
        outcome = run_experiment("E-F13")
        assert outcome.metrics["a_avg_mean_inlet_c"] > \
            outcome.metrics["a_max_mean_inlet_c"]

    def test_circulation_design_interior_optimum(self):
        outcome = run_experiment("E-VA")
        assert 1 < outcome.metrics["best_n"] < 1000
        assert outcome.metrics["best_cost_usd"] < \
            outcome.metrics["cost_n1_usd"]

    def test_describe_renders(self):
        outcome = run_experiment("E-F9")
        text = outcome.describe()
        assert "E-F9" in text
        assert "delta_max_c" in text

    def test_outcome_is_frozen(self):
        outcome = ExperimentOutcome(experiment_id="X", title="t",
                                    metrics={})
        with pytest.raises(AttributeError):
            outcome.title = "other"


class TestCliIntegration:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        assert "E-F14" in out

    def test_run_one(self, capsys):
        from repro.cli import main

        assert main(["experiment", "E-T1"]) == 0
        out = capsys.readouterr().out
        assert "break_even_days" in out

"""Run manifests and the three-artefact output directory."""

import json

from repro import obs
from repro.obs import MANIFEST_SCHEMA, Telemetry, build_manifest


def _session_with_data() -> Telemetry:
    telemetry = Telemetry()
    with obs.session(telemetry):
        obs.add("sim.steps", 48)
        obs.gauge_max("sim.max_cpu_temp_c", 80.5)
        obs.observe("teg.power_w", [3.9, 4.1])
        obs.emit("batch.start", n_jobs=2)
        with obs.span("engine.batch"):
            pass
    return telemetry


class TestBuildManifest:
    def test_core_fields(self):
        manifest = build_manifest(_session_with_data(),
                                  command=["h2p", "batch"])
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["command"] == ["h2p", "batch"]
        env = manifest["environment"]
        assert env["python"] and env["numpy"] and env["repro_version"]
        assert manifest["metrics"]["counters"]["sim.steps"] == 48
        assert manifest["spans"]["engine.batch"]["count"] == 1
        assert manifest["n_events"] == 1

    def test_git_revision_shape(self):
        revision = obs.git_revision()
        if revision is not None:  # running outside a checkout is fine
            assert set(revision) == {"sha", "dirty"}
            assert len(revision["sha"]) == 40

    def test_extra_entries_merge_into_top_level(self):
        manifest = build_manifest(Telemetry(), extra={"seed": 7})
        assert manifest["seed"] == 7

    def test_is_json_serialisable(self):
        json.dumps(build_manifest(_session_with_data()))


class TestWriteRunArtifacts:
    def test_writes_all_three(self, tmp_path):
        run_dir = tmp_path / "nested" / "run"
        paths = obs.write_run_artifacts(run_dir, _session_with_data(),
                                        command=["h2p"])
        assert set(paths) == {"manifest", "events", "prometheus"}
        manifest = json.loads(paths["manifest"].read_text())
        assert manifest["artifacts"] == {"events": "events.jsonl",
                                         "prometheus": "metrics.prom"}
        assert "repro_sim_steps_total 48" in \
            paths["prometheus"].read_text()
        events = obs.EventLog.from_jsonl(paths["events"].read_text())
        assert events.of_kind("batch.start")

    def test_manifest_metrics_match_session(self, tmp_path):
        telemetry = _session_with_data()
        paths = obs.write_run_artifacts(tmp_path, telemetry)
        manifest = json.loads(paths["manifest"].read_text())
        assert manifest["metrics"] \
            == telemetry.registry.snapshot().to_dict()

"""Gated OTLP bridge: pure converters always, SDK only when present.

The container deliberately does not ship the OpenTelemetry SDK, so the
gating path (ConfigurationError naming the missing packages) is tested
for real; the SDK replay is exercised against a recording fake injected
through ``_import_sdk``.
"""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import otel


class TestResolveEndpoint:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(obs.OTLP_ENDPOINT_ENV_VAR, raising=False)
        assert obs.resolve_otlp_endpoint() is None

    def test_explicit_normalised(self):
        assert obs.resolve_otlp_endpoint(
            "http://collector:4318/") == "http://collector:4318"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(obs.OTLP_ENDPOINT_ENV_VAR,
                           "https://otel.example")
        assert obs.resolve_otlp_endpoint() == "https://otel.example"

    @pytest.mark.parametrize("bad", ["", "  ", "collector:4318",
                                     "ftp://x"])
    def test_invalid_raises(self, monkeypatch, bad):
        monkeypatch.setenv(obs.OTLP_ENDPOINT_ENV_VAR, bad)
        with pytest.raises(ConfigurationError,
                           match=obs.OTLP_ENDPOINT_ENV_VAR):
            obs.resolve_otlp_endpoint()


class TestGating:
    @pytest.mark.skipif(obs.otlp_available(),
                        reason="OpenTelemetry SDK installed here")
    def test_bridge_raises_without_sdk(self):
        with pytest.raises(ConfigurationError,
                           match="OpenTelemetry SDK is not importable"):
            obs.OtlpBridge("http://collector:4318")

    def test_bridge_requires_endpoint(self, monkeypatch):
        monkeypatch.delenv(obs.OTLP_ENDPOINT_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError, match="needs an endpoint"):
            obs.OtlpBridge()

    def test_not_requested_never_imports(self, monkeypatch):
        # resolve returning None must short-circuit before any SDK
        # import is attempted.
        monkeypatch.delenv(obs.OTLP_ENDPOINT_ENV_VAR, raising=False)
        assert obs.resolve_otlp_endpoint() is None


def _snapshot() -> "obs.TelemetrySnapshot":
    telemetry = obs.Telemetry()
    with obs.session(telemetry):
        with obs.span("engine.batch"):
            with obs.span("engine.simulate"):
                pass
            with obs.span("engine.simulate"):
                pass
        obs.add("engine.jobs.completed", 3,
                labels={"scheme": "TEG_Original"})
        obs.gauge_max("sim.peak_temp_c", 61.5)
        obs.observe("teg.power_w", [0.7, 3.8], buckets=(1.0, 4.0))
    return telemetry.snapshot()


class TestPureConverters:
    def test_payload_shape(self):
        payload = obs.telemetry_to_otlp(_snapshot(),
                                        resource={"run": "r1"})
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        metrics = (payload["resourceMetrics"][0]
                   ["scopeMetrics"][0]["metrics"])
        assert {span["name"] for span in spans} \
            == {"engine.batch", "engine.simulate"}
        resource = payload["resourceSpans"][0]["resource"]["attributes"]
        assert {"key": "service.name",
                "value": {"stringValue": "repro"}} in resource
        assert {"key": "run", "value": {"stringValue": "r1"}} in resource
        assert {metric["name"] for metric in metrics} \
            == {"engine.jobs.completed", "sim.peak_temp_c",
                "teg.power_w"}

    def test_spans_nest_and_are_deterministic(self):
        a = obs.telemetry_to_otlp(_snapshot())
        b = obs.telemetry_to_otlp(_snapshot())
        spans_a = a["resourceSpans"][0]["scopeSpans"][0]["spans"]
        spans_b = b["resourceSpans"][0]["scopeSpans"][0]["spans"]
        # blake2b ids from the span path: identical across conversions.
        assert [s["spanId"] for s in spans_a] \
            == [s["spanId"] for s in spans_b]
        by_name = {span["name"]: span for span in spans_a}
        root = by_name["engine.batch"]
        child = by_name["engine.simulate"]
        assert root["parentSpanId"] == ""
        assert child["parentSpanId"] == root["spanId"]
        assert {"key": "repro.span.count",
                "value": {"stringValue": "2"}} in child["attributes"]

    def test_counter_is_cumulative_monotonic_with_labels(self):
        payload = obs.telemetry_to_otlp(_snapshot())
        metrics = (payload["resourceMetrics"][0]
                   ["scopeMetrics"][0]["metrics"])
        counter = next(m for m in metrics
                       if m["name"] == "engine.jobs.completed")
        assert counter["sum"]["isMonotonic"] is True
        assert counter["sum"]["aggregationTemporality"] == 2
        point = counter["sum"]["dataPoints"][0]
        assert point["asDouble"] == 3.0
        assert point["attributes"] == [
            {"key": "scheme", "value": {"stringValue": "TEG_Original"}}]

    def test_histogram_converts_losslessly(self):
        payload = obs.telemetry_to_otlp(_snapshot())
        metrics = (payload["resourceMetrics"][0]
                   ["scopeMetrics"][0]["metrics"])
        hist = next(m for m in metrics if m["name"] == "teg.power_w")
        point = hist["histogram"]["dataPoints"][0]
        assert point["explicitBounds"] == [1.0, 4.0]
        assert point["bucketCounts"] == ["1", "1", "0"]
        assert point["count"] == "2"
        assert point["sum"] == pytest.approx(4.5)

    def test_base_time_shifts_span_clock(self):
        shifted = obs.telemetry_to_otlp(_snapshot(),
                                        base_time_unix_nano=10**9)
        span = shifted["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        assert int(span["startTimeUnixNano"]) >= 10**9


class _FakeSpan:
    def __init__(self, log, name, start):
        self.log = log
        self.name = name
        self.start = start
        self.attributes = {}

    def set_attribute(self, key, value):
        self.attributes[key] = value

    def end(self, end_time=None):
        self.log.append(("span", self.name, self.start, end_time,
                         dict(self.attributes)))


class _FakeInstrument:
    def __init__(self, log, kind, name):
        self.log = log
        self.kind = kind
        self.name = name

    def add(self, value, labels=None):
        self.log.append((self.kind, self.name, value, labels or {}))

    def set(self, value, labels=None):
        self.log.append((self.kind, self.name, value, labels or {}))


class TestSdkReplay:
    @pytest.fixture
    def bridge(self, monkeypatch):
        from types import SimpleNamespace

        log = []

        class FakeTracer:
            def start_span(self, name, context=None, start_time=None):
                return _FakeSpan(log, name, start_time)

        class FakeTracerProvider:
            def __init__(self, resource=None):
                pass

            def add_span_processor(self, processor):
                pass

            def get_tracer(self, name):
                return FakeTracer()

            def shutdown(self):
                log.append(("shutdown", "tracer"))

        class FakeMeter:
            def create_counter(self, name):
                return _FakeInstrument(log, "counter", name)

            def create_gauge(self, name):
                return _FakeInstrument(log, "gauge", name)

        class FakeMeterProvider:
            def __init__(self, resource=None, metric_readers=()):
                pass

            def get_meter(self, name):
                return FakeMeter()

            def shutdown(self):
                log.append(("shutdown", "meter"))

        fake = SimpleNamespace(
            Resource=SimpleNamespace(create=lambda attrs: attrs),
            TracerProvider=FakeTracerProvider,
            BatchSpanProcessor=lambda exporter: None,
            OTLPSpanExporter=lambda endpoint: None,
            MeterProvider=FakeMeterProvider,
            PeriodicExportingMetricReader=lambda exporter,
            export_interval_millis=0: None,
            OTLPMetricExporter=lambda endpoint: None,
        )
        monkeypatch.setattr(otel, "_import_sdk", lambda: fake)
        return obs.OtlpBridge("http://collector:4318"), log

    def test_export_replays_spans_and_metrics(self, bridge):
        bridge_obj, log = bridge
        payload = bridge_obj.export(_snapshot())
        assert payload["resourceSpans"]

        spans = [entry for entry in log if entry[0] == "span"]
        assert {entry[1] for entry in spans} \
            == {"engine.batch", "engine.simulate"}
        for _, _, start, end, attributes in spans:
            assert end >= start
            assert attributes["repro.span.count"] >= 1

        counters = [entry for entry in log if entry[0] == "counter"]
        assert ("counter", "engine.jobs.completed", 3.0,
                {"scheme": "TEG_Original"}) in counters
        # Histogram decomposes into per-bucket le counters + sum/count.
        le_values = {labels["le"] for kind, name, _, labels in counters
                     if name == "teg.power_w_bucket"}
        assert le_values == {"1.0", "4.0", "+Inf"}
        assert ("counter", "teg.power_w_count", 2.0, {}) in counters
        gauges = [entry for entry in log if entry[0] == "gauge"]
        assert ("gauge", "sim.peak_temp_c", 61.5, {}) in gauges
        assert ("shutdown", "tracer") in log
        assert ("shutdown", "meter") in log

    def test_gauge_falls_back_to_up_down_counter(self, bridge,
                                                 monkeypatch):
        bridge_obj, log = bridge

        class OldMeter:
            def create_counter(self, name):
                return _FakeInstrument(log, "counter", name)

            def create_up_down_counter(self, name):
                return _FakeInstrument(log, "updown", name)

        bridge_obj._replay_metrics(OldMeter(), _snapshot().metrics)
        assert any(entry[0] == "updown"
                   and entry[1] == "sim.peak_temp_c" for entry in log)

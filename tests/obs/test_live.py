"""Live scrape endpoint: /metrics, /healthz, engine attachment.

The server is strictly observational — the tests here pin the scrape
contract (Prometheus text with labelled series, JSON health document),
the mid-run behaviour (counters only ever grow), and that attaching the
endpoint changes nothing about the simulation records.
"""

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.errors import ConfigurationError


def _get(url: str) -> tuple[int, dict, str]:
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return (response.status, dict(response.headers),
                response.read().decode("utf-8"))


class TestResolveMetricsPort:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(obs.METRICS_PORT_ENV_VAR, raising=False)
        assert obs.resolve_metrics_port() is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(obs.METRICS_PORT_ENV_VAR, "9000")
        assert obs.resolve_metrics_port(1234) == 1234

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(obs.METRICS_PORT_ENV_VAR, "9464")
        assert obs.resolve_metrics_port() == 9464

    def test_blank_env_is_off(self, monkeypatch):
        monkeypatch.setenv(obs.METRICS_PORT_ENV_VAR, "  ")
        assert obs.resolve_metrics_port() is None

    @pytest.mark.parametrize("bad", ["nope", "-1", "65536"])
    def test_invalid_values_raise(self, monkeypatch, bad):
        monkeypatch.setenv(obs.METRICS_PORT_ENV_VAR, bad)
        with pytest.raises(ConfigurationError,
                           match=obs.METRICS_PORT_ENV_VAR):
            obs.resolve_metrics_port()

    def test_invalid_explicit_names_parameter(self):
        with pytest.raises(ConfigurationError, match="metrics_port"):
            obs.resolve_metrics_port(70000)


class TestRunHealth:
    def test_lifecycle(self):
        health = obs.RunHealth()
        assert health.to_dict()["phase"] == "idle"
        health.begin(jobs_total=3, shards_total=4)
        health.job_done()
        health.job_done(failed=True)
        health.shard_done(2)
        health.straggler()
        state = health.to_dict()
        assert state["phase"] == "running"
        assert state["jobs"] == {"completed": 1, "failed": 1, "total": 3}
        assert state["shards"] == {"completed": 2, "total": 4}
        assert state["stragglers"] == 1
        health.finish()
        assert health.to_dict()["phase"] == "done"

    def test_begin_resets_but_counts_runs(self):
        health = obs.RunHealth()
        health.begin(jobs_total=1)
        health.job_done()
        health.begin(jobs_total=2)
        state = health.to_dict()
        assert state["jobs"]["completed"] == 0
        assert state["runs"] == 2

    def test_add_shards_grows_denominator(self):
        health = obs.RunHealth()
        health.begin(shards_total=4)
        health.add_shards(3)
        assert health.to_dict()["shards"]["total"] == 7


class TestLiveTelemetryServer:
    def test_unbound_routes(self):
        with obs.LiveTelemetryServer(port=0) as server:
            status, headers, body = _get(f"{server.url}/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            assert body == ""
            status, _, body = _get(f"{server.url}/healthz")
            assert json.loads(body) == {"phase": "idle"}

    def test_unknown_route_404(self):
        with obs.LiveTelemetryServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{server.url}/nope")
            assert err.value.code == 404

    def test_scrape_sees_labelled_series(self):
        telemetry = obs.Telemetry()
        telemetry.registry.counter(
            "engine.jobs.completed", {"scheme": "a"}).inc(2)
        with obs.LiveTelemetryServer(port=0) as server:
            server.bind(telemetry, None)
            _, _, body = _get(f"{server.url}/metrics")
        assert ('repro_engine_jobs_completed_total{scheme="a"} 2'
                in body)

    def test_scrape_is_live_not_cached(self):
        telemetry = obs.Telemetry()
        counter = telemetry.registry.counter("ticks")
        with obs.LiveTelemetryServer(port=0) as server:
            server.bind(telemetry, None)
            _, _, before = _get(f"{server.url}/metrics")
            counter.inc(5)
            _, _, after = _get(f"{server.url}/metrics")
        assert "repro_ticks_total 0" in before
        assert "repro_ticks_total 5" in after

    def test_ephemeral_port_resolved_and_close_idempotent(self):
        server = obs.LiveTelemetryServer(port=0)
        assert 0 < server.port <= 65535
        assert server.url == f"http://127.0.0.1:{server.port}"
        server.close()
        server.close()

    def test_bind_conflict_raises_configuration_error(self):
        with obs.LiveTelemetryServer(port=0) as server:
            with pytest.raises(ConfigurationError, match="cannot bind"):
                obs.LiveTelemetryServer(port=server.port)


class TestEngineAttachment:
    @staticmethod
    def _jobs(n_servers=24):
        from repro.core.config import teg_original
        from repro.core.engine import SimulationJob
        from repro.workloads.synthetic import common_trace

        return [SimulationJob(trace=common_trace(n_servers=n_servers),
                              config=teg_original())]

    def test_metrics_port_implies_telemetry(self):
        from repro.core.engine import BatchSimulationEngine

        with BatchSimulationEngine(n_workers=1, prefer="serial",
                                   metrics_port=0) as engine:
            assert engine.telemetry is True
            assert engine.metrics_address is not None

    def test_no_port_no_server(self, monkeypatch):
        from repro.core.engine import BatchSimulationEngine

        monkeypatch.delenv(obs.METRICS_PORT_ENV_VAR, raising=False)
        with BatchSimulationEngine(n_workers=1, prefer="serial") as engine:
            assert engine.metrics_address is None

    def test_env_var_attaches_server(self, monkeypatch):
        from repro.core.engine import BatchSimulationEngine

        monkeypatch.setenv(obs.METRICS_PORT_ENV_VAR, "0")
        with BatchSimulationEngine(n_workers=1, prefer="serial") as engine:
            assert engine.metrics_address is not None

    def test_scrape_after_run_and_health_progress(self):
        from repro.core.engine import BatchSimulationEngine

        with BatchSimulationEngine(n_workers=1, prefer="serial",
                                   metrics_port=0) as engine:
            engine.run(self._jobs())
            _, _, body = _get(f"{engine.metrics_address}/metrics")
            _, _, health_body = _get(f"{engine.metrics_address}/healthz")
        assert "repro_engine_jobs_completed_total 1" in body
        assert 'repro_sim_runs_total{scheme="' in body
        health = json.loads(health_body)
        assert health["phase"] == "done"
        assert health["jobs"] == {"completed": 1, "failed": 0, "total": 1}

    def test_sharded_run_health_counts_shards(self):
        from repro.core.engine import BatchSimulationEngine

        with BatchSimulationEngine(n_workers=2, prefer="thread",
                                   shard=True, shard_servers=20,
                                   shard_steps=48,
                                   metrics_port=0) as engine:
            batch = engine.run(self._jobs(n_servers=40))
            _, _, body = _get(f"{engine.metrics_address}/metrics")
            health = json.loads(
                _get(f"{engine.metrics_address}/healthz")[2])
        assert batch.metrics.shards > 1
        assert health["shards"]["total"] == batch.metrics.shards
        assert health["shards"]["completed"] == batch.metrics.shards
        assert 'repro_shard_cells_total{scheme="' in body
        assert 'repro_engine_shards_completed_total{scheme="' in body

    def test_midrun_scrapes_are_monotone(self):
        """Counters sampled while the batch runs only ever grow.

        ``shard.cells`` accumulates into the batch session the moment
        each shard folds (the live-sink path), so its family total is
        the run's progress bar: strictly monotone across scrapes and
        equal to the trace's full cell count at the end.
        """
        from repro.core.engine import BatchSimulationEngine

        jobs = self._jobs(n_servers=60)

        def cells_total(body: str) -> float:
            return sum(float(line.rsplit(" ", 1)[1])
                       for line in body.splitlines()
                       if line.startswith("repro_shard_cells_total{"))

        with BatchSimulationEngine(n_workers=1, prefer="serial",
                                   shard=True, shard_servers=20,
                                   shard_steps=24,
                                   metrics_port=0) as engine:
            url = f"{engine.metrics_address}/metrics"
            samples: list[float] = []
            stop = threading.Event()

            def scrape_loop():
                while not stop.is_set():
                    samples.append(cells_total(_get(url)[2]))

            scraper = threading.Thread(target=scrape_loop, daemon=True)
            scraper.start()
            try:
                batch = engine.run(jobs)
            finally:
                stop.set()
                scraper.join(timeout=5.0)
            samples.append(cells_total(_get(url)[2]))
        assert batch.metrics.shards > 1
        assert samples == sorted(samples)
        trace = jobs[0].trace
        assert samples[-1] == trace.n_steps * trace.n_servers

    def test_records_identical_with_and_without_endpoint(self):
        from repro.core.engine import BatchSimulationEngine

        jobs = self._jobs()
        with BatchSimulationEngine(n_workers=1, prefer="serial",
                                   telemetry=True) as engine:
            plain = engine.run(self._jobs())
        with BatchSimulationEngine(n_workers=1, prefer="serial",
                                   metrics_port=0) as engine:
            _get(f"{engine.metrics_address}/healthz")
            live = engine.run(jobs)
        assert plain.results[0].records == live.results[0].records

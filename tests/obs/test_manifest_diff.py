"""Manifest diffing: the algebra behind ``h2p audit --manifest A B``.

Two honest re-runs of the same workload must diff clean (timing is
ignored); any change to counter totals, histogram shape, or span
structure must surface as a drift.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import counter_totals, diff_manifests, load_manifest


def _manifest(counters=None, gauges=None, histograms=None, spans=None):
    return {
        "metrics": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
        "spans": spans or {},
    }


def _histogram(buckets=(1.0, 2.0), counts=(1, 0, 1), total=2, sum_=3.0):
    return {"buckets": list(buckets), "counts": list(counts),
            "total": total, "sum": sum_}


class TestSelfAndCleanDiffs:
    def test_self_diff_is_ok(self):
        manifest = _manifest(
            counters={'sim.runs{scheme="a"}': 2.0},
            gauges={"sim.peak_temp_c": 61.5},
            histograms={"teg.power_w": _histogram()},
            spans={"engine.batch": {
                "count": 1,
                "children": {"engine.simulate": {"count": 2}}}})
        diff = diff_manifests(manifest, manifest)
        assert diff.ok
        assert diff.to_dict()["n_drifts"] == 0
        assert "agree" in diff.describe()

    def test_timing_fields_never_compared(self):
        a = _manifest(spans={"engine.batch": {"count": 1, "wall_s": 0.8}})
        b = _manifest(spans={"engine.batch": {"count": 1, "wall_s": 9.9}})
        assert diff_manifests(a, b).ok

    def test_counter_within_tolerance_clean(self):
        a = _manifest(counters={"sim.steps": 1e6})
        b = _manifest(counters={"sim.steps": 1e6 * (1 + 1e-8)})
        assert diff_manifests(a, b, rel_tol=1e-6).ok

    def test_missing_zero_counter_tolerated(self):
        a = _manifest(counters={"engine.cache.hit": 0.0, "sim.runs": 2.0})
        b = _manifest(counters={"sim.runs": 2.0})
        assert diff_manifests(a, b).ok


class TestDriftDetection:
    def test_counter_drift_beyond_tolerance(self):
        a = _manifest(counters={'sim.runs{scheme="a"}': 2.0})
        b = _manifest(counters={'sim.runs{scheme="a"}': 3.0})
        diff = diff_manifests(a, b, name_a="left", name_b="right")
        assert not diff.ok
        (drift,) = diff.drifts
        assert drift["kind"] == "counter"
        assert drift["name"] == 'sim.runs{scheme="a"}'
        assert drift["a"] == 2.0 and drift["b"] == 3.0
        assert "left" in diff.describe() and "right" in diff.describe()

    def test_missing_nonzero_counter_is_drift(self):
        a = _manifest(counters={"engine.jobs.completed": 2.0})
        diff = diff_manifests(a, _manifest())
        (drift,) = diff.drifts
        assert drift["kind"] == "counter"
        assert "missing from B" in drift["detail"]

    def test_gauge_drift_and_missing_gauge(self):
        a = _manifest(gauges={"peak": 40.0, "extra": 0.0})
        b = _manifest(gauges={"peak": 55.0})
        diff = diff_manifests(a, b)
        kinds = {(d["kind"], d["name"]) for d in diff.drifts}
        # Gauges get no absent==zero grace: both entries drift.
        assert kinds == {("gauge", "peak"), ("gauge", "extra")}

    def test_histogram_counts_compare_exactly(self):
        a = _manifest(histograms={"h": _histogram(counts=(1, 0, 1))})
        b = _manifest(histograms={"h": _histogram(counts=(0, 1, 1))})
        (drift,) = diff_manifests(a, b).drifts
        assert drift["kind"] == "histogram"
        assert "bucket counts differ" in drift["detail"]

    def test_histogram_bounds_and_sum(self):
        base = _manifest(histograms={"h": _histogram()})
        bounds = _manifest(histograms={"h": _histogram(buckets=(1.0, 9.0))})
        assert ("bucket bounds differ"
                in diff_manifests(base, bounds).drifts[0]["detail"])
        sums = _manifest(histograms={"h": _histogram(sum_=3.5)})
        assert ("sums differ"
                in diff_manifests(base, sums).drifts[0]["detail"])
        close = _manifest(histograms={"h": _histogram(sum_=3.0 + 1e-9)})
        assert diff_manifests(base, close).ok

    def test_span_count_and_path_drifts(self):
        a = _manifest(spans={"engine.batch": {
            "count": 1,
            "children": {"engine.simulate": {"count": 2}}}})
        b = _manifest(spans={"engine.batch": {
            "count": 1,
            "children": {"engine.simulate": {"count": 3},
                         "engine.retry": {"count": 1}}}})
        diff = diff_manifests(a, b)
        by_name = {d["name"]: d for d in diff.drifts}
        assert set(by_name) == {"engine.batch/engine.simulate",
                                "engine.batch/engine.retry"}
        assert ("call counts differ: 2 vs 3"
                in by_name["engine.batch/engine.simulate"]["detail"])
        assert ("only in B"
                in by_name["engine.batch/engine.retry"]["detail"])

    def test_drifts_are_json_serialisable(self):
        a = _manifest(counters={"sim.runs": 1.0},
                      histograms={"h": _histogram()})
        b = _manifest(counters={"sim.runs": 2.0})
        payload = diff_manifests(a, b).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["ok"] is False
        assert payload["n_drifts"] == len(payload["drifts"])


class TestLoadManifest:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_manifest(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_manifest(path)

    def test_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_manifest(path)

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(_manifest()), encoding="utf-8")
        assert load_manifest(path) == _manifest()


class TestCounterTotals:
    def test_folds_labelled_series_per_family(self):
        totals = counter_totals({
            'jobs{scheme="a"}': 2.0,
            'jobs{scheme="b"}': 3.0,
            "steps": 7.0,
        })
        assert totals == {"jobs": 5.0, "steps": 7.0}

"""Event log JSONL round-trips, Prometheus rendering, span-tree output."""

import json

from repro.obs import (
    Event,
    EventLog,
    MetricsRegistry,
    Tracer,
    prometheus_name,
    prometheus_text,
    render_span_tree,
    write_prometheus,
)


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit("job.retry", scheme="a")
        log.emit("job.failed", scheme="b")
        log.emit("job.retry", scheme="c")
        assert len(log) == 3
        assert [event.data["scheme"] for event in log.of_kind("job.retry")] \
            == ["a", "c"]

    def test_jsonl_roundtrip(self):
        log = EventLog()
        log.emit("batch.start", n_jobs=4, mode="kernel")
        log.emit("sim.safety_violation", server_id=3, temperature_c=91.2)
        restored = EventLog.from_jsonl(log.to_jsonl())
        assert len(restored) == 2
        first, second = restored
        assert first.kind == "batch.start"
        assert first.data == {"n_jobs": 4, "mode": "kernel"}
        assert second.data["server_id"] == 3

    def test_jsonl_lines_are_independent_json(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        for line in lines:
            payload = json.loads(line)
            assert {"kind", "ts"} <= set(payload)

    def test_write_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("x", k=1)
        path = log.write_jsonl(tmp_path / "events.jsonl")
        assert path.read_text().count("\n") == 1

    def test_event_to_dict_flattens_payload(self):
        event = Event(kind="e", ts=1.5, data={"a": 1})
        assert event.to_dict() == {"kind": "e", "ts": 1.5, "a": 1}


class TestPrometheus:
    def test_name_mapping(self):
        assert prometheus_name("engine.cache.hits") \
            == "repro_engine_cache_hits"
        assert prometheus_name("sim.steps", "_total") \
            == "repro_sim_steps_total"
        assert prometheus_name("weird name!") == "repro_weird_name_"

    def test_counter_and_gauge_rendering(self):
        registry = MetricsRegistry()
        registry.counter("sim.steps").inc(48)
        registry.gauge("sim.max_cpu_temp_c").set_max(83.25)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_sim_steps_total counter" in text
        assert "repro_sim_steps_total 48" in text
        assert "# TYPE repro_sim_max_cpu_temp_c gauge" in text
        assert "repro_sim_max_cpu_temp_c 83.25" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("teg.power_w", buckets=(1.0, 2.0))
        hist.observe_many([0.5, 1.5, 1.7, 9.0])
        text = prometheus_text(registry.snapshot())
        assert 'repro_teg_power_w_bucket{le="1"} 1' in text
        assert 'repro_teg_power_w_bucket{le="2"} 3' in text
        assert 'repro_teg_power_w_bucket{le="+Inf"} 4' in text
        assert "repro_teg_power_w_count 4" in text

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_write_prometheus(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = write_prometheus(registry.snapshot(), tmp_path / "m.prom")
        assert "repro_c_total 1" in path.read_text()


class TestRenderSpanTree:
    def test_indents_children_and_shows_share(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        text = render_span_tree(tracer.snapshot())
        lines = text.splitlines()
        assert lines[0].startswith("span")
        assert any(line.lstrip().startswith("outer") for line in lines)
        assert any("  inner" in line for line in lines)
        assert "%" in text

    def test_empty_tree(self):
        assert render_span_tree({}) == "(no spans recorded)"

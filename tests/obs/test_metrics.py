"""Metric instruments and their order-free snapshot/merge semantics.

The batch layer's correctness guarantee — identical aggregates whatever
executor ran the jobs — rests entirely on the merge algebra tested
here: counters add, gauges combine with max, histograms add per-bucket,
and every combination is associative and commutative.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_set_overwrites_set_max_keeps_peak(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.set(5.0)
        assert gauge.value == 5.0
        gauge.set_max(3.0)
        assert gauge.value == 5.0
        gauge.set_max(7.0)
        assert gauge.value == 7.0

    def test_unset_gauge_absent_from_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("g")
        assert "g" not in registry.snapshot().gauges


class TestHistogram:
    def test_bucketing_and_overflow(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe_many(np.array([0.5, 1.5, 1.7, 99.0]))
        snap = hist.snapshot()
        assert snap.counts == (1, 2, 1)  # <=1, <=2, +inf
        assert snap.total == 4
        assert snap.sum == pytest.approx(102.7)

    def test_observe_one_equals_observe_many(self):
        one, many = Histogram("a"), Histogram("b")
        values = [0.2, 3.9, 4.1, 7.5, 12.0]
        for value in values:
            one.observe(value)
        many.observe_many(np.array(values))
        assert one.snapshot().counts == many.snapshot().counts
        assert one.snapshot().sum == pytest.approx(many.snapshot().sum)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError, match="at least one"):
            Histogram("h", buckets=())

    def test_merge_requires_matching_buckets(self):
        a = Histogram("h", buckets=(1.0,)).snapshot()
        b = Histogram("h", buckets=(2.0,)).snapshot()
        with pytest.raises(ConfigurationError, match="buckets"):
            a.merge(b)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert len(registry) == 1

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="Counter"):
            registry.gauge("x")

    def test_snapshot_roundtrip_through_pickle(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set_max(4.5)
        registry.histogram("h").observe(3.9)
        snap = pickle.loads(pickle.dumps(registry.snapshot()))
        assert snap.counters["c"] == 3
        assert snap.gauges["g"] == 4.5
        assert snap.histograms["h"].total == 1


snapshot_strategy = st.builds(
    lambda counters, gauges: MetricsSnapshot(counters=counters,
                                             gauges=gauges),
    st.dictionaries(st.sampled_from(["a", "b", "c"]),
                    st.floats(min_value=0, max_value=100), max_size=3),
    st.dictionaries(st.sampled_from(["g", "h"]),
                    st.floats(min_value=-50, max_value=50), max_size=2),
)


class TestMergeAlgebra:
    @given(snapshot_strategy, snapshot_strategy)
    def test_merge_commutes(self, a, b):
        left, right = a.merge(b), b.merge(a)
        assert left.counters == pytest.approx(right.counters)
        assert left.gauges == pytest.approx(right.gauges)

    @given(snapshot_strategy, snapshot_strategy, snapshot_strategy)
    def test_merge_associates(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.counters == pytest.approx(right.counters)
        assert left.gauges == pytest.approx(right.gauges)

    def test_histogram_merge_adds_per_bucket(self):
        a, b = Histogram("h", buckets=(1.0, 2.0)), \
            Histogram("h", buckets=(1.0, 2.0))
        a.observe_many(np.array([0.5, 1.5]))
        b.observe_many(np.array([1.5, 9.0]))
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counts == (1, 2, 1)
        assert merged.total == 4

    def test_registry_merge_matches_snapshot_merge(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(5)
        worker.gauge("g").set_max(60.0)
        worker.histogram("h").observe(3.0)
        batch = MetricsRegistry()
        batch.counter("c").inc(1)
        batch.gauge("g").set_max(55.0)
        batch.merge(worker.snapshot())
        snap = batch.snapshot()
        assert snap.counters["c"] == 6
        assert snap.gauges["g"] == 60.0
        assert snap.histograms["h"].total == 1

    def test_to_dict_is_sorted_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        payload = registry.snapshot().to_dict()
        assert list(payload["counters"]) == ["a", "b"]
        json.dumps(payload)  # must not raise

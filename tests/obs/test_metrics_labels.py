"""Labelled metric series: encoding, aggregation, merge algebra.

Labels ride inside encoded series keys (``name{k="v"}``), so the
order-free merge algebra the executors rely on applies per series
unchanged.  These tests pin the encoding (sorted label names, Prometheus
escaping), the bare-name fallback aggregation that keeps pre-label
consumers working, and — via hypothesis — that labelled snapshots merge
commutatively, associatively, and identically across executors.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    decode_series,
    encode_series,
    escape_label_value,
    series_family,
)


class TestSeriesEncoding:
    def test_bare_name_passes_through(self):
        assert encode_series("sim.runs") == "sim.runs"
        assert encode_series("sim.runs", {}) == "sim.runs"

    def test_labels_sorted_into_key(self):
        key = encode_series("c", {"b": "2", "a": "1"})
        assert key == 'c{a="1",b="2"}'
        assert key == encode_series("c", {"a": "1", "b": "2"})

    def test_roundtrip(self):
        name, labels = decode_series(
            encode_series("engine.cache.hit",
                          {"scheme": "TEG_Original", "trace": "common"}))
        assert name == "engine.cache.hit"
        assert labels == {"scheme": "TEG_Original", "trace": "common"}

    @pytest.mark.parametrize("raw", [
        'quo"te', "back\\slash", "new\nline", 'all\\"\nthree',
    ])
    def test_escaping_roundtrips(self, raw):
        escaped = escape_label_value(raw)
        assert "\n" not in escaped
        name, labels = decode_series(encode_series("m", {"v": raw}))
        assert labels["v"] == raw

    def test_non_string_values_coerced(self):
        name, labels = decode_series(encode_series("m", {"shard": 3}))
        assert labels == {"shard": "3"}

    def test_bad_label_name_rejected(self):
        with pytest.raises(ConfigurationError, match="label name"):
            encode_series("m", {"not-valid": "x"})

    def test_braces_in_metric_name_rejected(self):
        with pytest.raises(ConfigurationError, match="braces"):
            encode_series("m{oops", {"a": "1"})

    def test_series_family(self):
        assert series_family('c{a="1"}') == "c"
        assert series_family("c") == "c"


class TestFallbackAggregation:
    def test_counters_sum_by_family(self):
        registry = MetricsRegistry()
        registry.counter("jobs", {"scheme": "a"}).inc(2)
        registry.counter("jobs", {"scheme": "b"}).inc(3)
        counters = registry.snapshot().counters
        assert counters['jobs{scheme="a"}'] == 2
        assert counters["jobs"] == 5  # bare name aggregates

    def test_gauges_max_by_family(self):
        registry = MetricsRegistry()
        registry.gauge("peak", {"zone": "a"}).set_max(40.0)
        registry.gauge("peak", {"zone": "b"}).set_max(55.0)
        assert registry.snapshot().gauges["peak"] == 55.0

    def test_histograms_merge_by_family(self):
        registry = MetricsRegistry()
        registry.histogram("p", buckets=(1.0, 2.0),
                           labels={"s": "a"}).observe(0.5)
        registry.histogram("p", buckets=(1.0, 2.0),
                           labels={"s": "b"}).observe(9.0)
        merged = registry.snapshot().histograms["p"]
        assert merged.total == 2
        assert merged.counts == (1, 0, 1)

    def test_exact_key_semantics_untouched(self):
        registry = MetricsRegistry()
        registry.counter("jobs", {"scheme": "a"}).inc()
        counters = registry.snapshot().counters
        # Membership, get and iteration stay exact-key so merge()
        # never double-counts through the fallback.
        assert "jobs" not in counters
        assert counters.get("jobs") is None
        assert list(counters) == ['jobs{scheme="a"}']
        with pytest.raises(KeyError):
            counters["other"]

    def test_unlabelled_series_still_exact(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(7)
        assert registry.snapshot().counters["jobs"] == 7

    def test_fallback_survives_pickle(self):
        registry = MetricsRegistry()
        registry.counter("jobs", {"scheme": "a"}).inc(2)
        registry.counter("jobs", {"scheme": "b"}).inc(3)
        snap = pickle.loads(pickle.dumps(registry.snapshot()))
        assert snap.counters["jobs"] == 5

    def test_fallback_survives_merge(self):
        a = MetricsSnapshot(counters={'jobs{s="x"}': 1.0})
        b = MetricsSnapshot(counters={'jobs{s="y"}': 2.0})
        assert a.merge(b).counters["jobs"] == 3.0


class TestRegistryLabelKinds:
    def test_kind_checked_per_family_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("x", {"a": "1"})
        with pytest.raises(ConfigurationError, match="Counter"):
            registry.gauge("x", {"a": "2"})
        with pytest.raises(ConfigurationError, match="Counter"):
            registry.gauge("x")

    def test_labelled_series_are_distinct_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("x", {"k": "1"})
        b = registry.counter("x", {"k": "2"})
        assert a is not b
        assert registry.counter("x", {"k": "1"}) is a


class TestHistogramGuards:
    def test_empty_array_is_noop(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.observe_many(np.array([])) == 0
        assert hist.snapshot().total == 0

    def test_nan_and_inf_skipped_and_counted(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        dropped = hist.observe_many(
            np.array([0.5, np.nan, np.inf, -np.inf, 1.5]))
        assert dropped == 3
        snap = hist.snapshot()
        assert snap.total == 2
        assert np.isfinite(snap.sum)
        assert snap.sum == pytest.approx(2.0)

    def test_all_nonfinite_is_noop_with_count(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.observe_many(np.array([np.nan, np.nan])) == 2
        assert hist.snapshot().total == 0

    def test_session_observe_emits_skip_event(self):
        from repro import obs

        telemetry = obs.Telemetry()
        with obs.session(telemetry):
            obs.observe("teg.power_w", np.array([1.0, np.nan]))
        skipped = telemetry.events.of_kind("obs.histogram_skipped")
        assert len(skipped) == 1
        assert skipped[0].data["metric"] == "teg.power_w"
        assert skipped[0].data["dropped"] == 1
        assert telemetry.registry.snapshot(
        ).histograms["teg.power_w"].total == 1


labelled_key = st.builds(
    encode_series,
    st.sampled_from(["a", "b"]),
    st.fixed_dictionaries(
        {},
        optional={"scheme": st.sampled_from(["x", "y"]),
                  "trace": st.sampled_from(["t1", "t2"])}),
)
labelled_snapshot = st.builds(
    lambda counters, gauges: MetricsSnapshot(counters=counters,
                                             gauges=gauges),
    st.dictionaries(labelled_key,
                    st.floats(min_value=0, max_value=100), max_size=4),
    st.dictionaries(labelled_key,
                    st.floats(min_value=-50, max_value=50), max_size=3),
)


class TestLabelledMergeAlgebra:
    @given(labelled_snapshot, labelled_snapshot)
    def test_merge_commutes(self, a, b):
        left, right = a.merge(b), b.merge(a)
        assert dict(left.counters) == pytest.approx(dict(right.counters))
        assert dict(left.gauges) == pytest.approx(dict(right.gauges))

    @given(labelled_snapshot, labelled_snapshot, labelled_snapshot)
    def test_merge_associates(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert dict(left.counters) == pytest.approx(dict(right.counters))
        assert dict(left.gauges) == pytest.approx(dict(right.gauges))

    @settings(max_examples=25)
    @given(st.permutations(list(range(5))))
    def test_fold_order_free(self, order):
        parts = [MetricsSnapshot(counters={f'c{{i="{i % 2}"}}': float(i)})
                 for i in range(5)]
        folded = parts[order[0]]
        for index in order[1:]:
            folded = folded.merge(parts[index])
        assert dict(folded.counters) == {'c{i="0"}': 6.0, 'c{i="1"}': 4.0}
        assert folded.counters["c"] == 10.0


class TestExecutorIndependence:
    """Labelled totals must not depend on which executor ran the jobs."""

    @staticmethod
    def _jobs():
        from repro.core.config import teg_loadbalance, teg_original
        from repro.core.engine import SimulationJob
        from repro.workloads.synthetic import trace_by_name

        traces = [trace_by_name(name, n_servers=20)
                  for name in ("common", "drastic")]
        return [SimulationJob(trace=trace, config=config())
                for trace in traces
                for config in (teg_original, teg_loadbalance)]

    @staticmethod
    def _sim_series(batch):
        counters = batch.telemetry.registry.snapshot().counters
        return {key: value for key, value in counters.items()
                if series_family(key).startswith("sim.")}

    def test_serial_thread_process_identical_labelled_totals(self):
        from repro.core.engine import run_batch

        reference = None
        for prefer in ("serial", "thread", "process"):
            batch = run_batch(self._jobs(), 2, prefer=prefer,
                              telemetry=True)
            series = self._sim_series(batch)
            assert series, f"no sim.* series under {prefer}"
            # Every series carries (scheme, trace) labels.
            assert all("scheme=" in key and "trace=" in key
                       for key in series)
            if reference is None:
                reference = series
            else:
                assert series == reference, f"{prefer} diverged"

    def test_sharded_labelled_totals_executor_independent(self):
        from repro.core.config import teg_original
        from repro.core.engine import SimulationJob, run_batch
        from repro.workloads.synthetic import common_trace

        trace = common_trace(n_servers=40)
        totals = []
        for prefer in ("serial", "thread", "process"):
            batch = run_batch(
                [SimulationJob(trace=trace, config=teg_original())], 2,
                prefer=prefer, telemetry=True, shard=True,
                shard_servers=20, shard_steps=48)
            assert batch.metrics.shards > 1
            counters = batch.telemetry.registry.snapshot().counters
            totals.append({key: value for key, value in counters.items()
                           if series_family(key) == "shard.cells"})
        assert totals[0] == totals[1] == totals[2]
        assert totals[0]
        assert all("shard=" in key and "scheme=" in key
                   for key in totals[0])

"""Telemetry sessions, env-var validation and result recording.

The environment knobs follow the same contract as
``resolve_workers``/``REPRO_WORKERS``: malformed values raise
``ConfigurationError`` naming the variable, so a typo fails fast
instead of silently disabling telemetry.
"""

import pickle

import pytest

from repro import obs
from repro.core.config import teg_original
from repro.core.simulator import DatacenterSimulator
from repro.errors import ConfigurationError
from repro.obs import Telemetry, TelemetrySnapshot
from repro.workloads.synthetic import common_trace


class TestTelemetryEnabled:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert obs.telemetry_enabled(False) is False
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert obs.telemetry_enabled(True) is True

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert obs.telemetry_enabled() is False

    @pytest.mark.parametrize("word,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
        ("", False),
    ])
    def test_boolean_words(self, monkeypatch, word, expected):
        monkeypatch.setenv("REPRO_TELEMETRY", word)
        assert obs.telemetry_enabled() is expected

    def test_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "maybe")
        with pytest.raises(ConfigurationError, match="REPRO_TELEMETRY"):
            obs.telemetry_enabled()


class TestResolveTelemetryDir:
    def test_explicit_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "env"))
        assert obs.resolve_telemetry_dir(tmp_path / "cli") \
            == tmp_path / "cli"

    def test_env_fallback_and_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
        assert obs.resolve_telemetry_dir() == tmp_path
        monkeypatch.delenv("REPRO_TELEMETRY_DIR")
        assert obs.resolve_telemetry_dir() is None

    def test_blank_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", "   ")
        with pytest.raises(ConfigurationError,
                           match="REPRO_TELEMETRY_DIR"):
            obs.resolve_telemetry_dir()

    def test_existing_file_rejected(self, tmp_path):
        path = tmp_path / "file.txt"
        path.write_text("x")
        with pytest.raises(ConfigurationError, match="not a"):
            obs.resolve_telemetry_dir(path)


class TestSession:
    def test_helpers_noop_without_session(self):
        # Must not raise and must not create any state.
        obs.add("nowhere", 5)
        obs.gauge_max("nowhere", 1.0)
        obs.observe("nowhere", [1.0])
        obs.emit("nowhere")
        with obs.span("nowhere"):
            pass
        assert obs.current() is None

    def test_helpers_record_into_current_session(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            assert obs.current() is telemetry
            obs.add("c", 2)
            obs.gauge_max("g", 9.0)
            obs.observe("h", [3.9, 4.1])
            obs.emit("e", detail=1)
            with obs.span("s"):
                pass
        assert obs.current() is None
        snap = telemetry.snapshot()
        assert snap.metrics.counters["c"] == 2
        assert snap.metrics.gauges["g"] == 9.0
        assert snap.metrics.histograms["h"].total == 2
        assert snap.spans["s"]["count"] == 1
        assert snap.events[0].kind == "e"

    def test_session_none_shields_nested_code(self):
        outer = Telemetry()
        with obs.session(outer):
            with obs.session(None):
                obs.add("hidden")
            obs.add("visible")
        counters = outer.snapshot().metrics.counters
        assert counters == {"visible": 1}

    def test_sessions_nest_and_restore(self):
        outer, inner = Telemetry(), Telemetry()
        with obs.session(outer):
            with obs.session(inner):
                obs.add("c")
            assert obs.current() is outer
        assert inner.snapshot().metrics.counters["c"] == 1
        assert outer.snapshot().metrics.counters == {}


class TestTelemetrySnapshot:
    def test_pickles(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.add("c", 3)
            obs.observe("h", [4.0])
            obs.emit("e")
            with obs.span("s"):
                pass
        snap = pickle.loads(pickle.dumps(telemetry.snapshot()))
        assert isinstance(snap, TelemetrySnapshot)
        assert snap.metrics.counters["c"] == 3
        assert snap.events[0].kind == "e"

    def test_merge_snapshot_accumulates(self):
        worker = Telemetry()
        with obs.session(worker):
            obs.add("c", 4)
            with obs.span("s"):
                pass
        batch = Telemetry()
        batch.registry.counter("c").inc(1)
        batch.merge_snapshot(worker.snapshot())
        batch.merge_snapshot(worker.snapshot())
        assert batch.registry.snapshot().counters["c"] == 9
        assert batch.tracer.snapshot()["s"]["count"] == 2

    def test_snapshot_merge_is_order_free(self):
        from repro.obs import MetricsSnapshot

        a = TelemetrySnapshot(metrics=MetricsSnapshot(
            counters={"c": 1.0}, gauges={"g": 5.0}))
        b = TelemetrySnapshot(metrics=MetricsSnapshot(
            counters={"c": 2.0}, gauges={"g": 3.0}))
        assert a.merge(b).metrics.counters \
            == b.merge(a).metrics.counters
        assert a.merge(b).metrics.gauges == {"g": 5.0}


class TestRecordResult:
    @pytest.fixture(scope="class")
    def result(self):
        trace = common_trace(n_servers=40, duration_s=2 * 3600.0,
                             interval_s=300.0, seed=12)
        return DatacenterSimulator(trace, teg_original()).run()

    def test_counters_match_result(self, result):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.record_result(result)
        counters = telemetry.registry.snapshot().counters
        assert counters["sim.runs"] == 1
        assert counters["sim.steps"] == len(result.records)
        assert counters["sim.safety_violations"] \
            == result.total_safety_violations
        assert counters["sim.degraded_steps"] == result.degraded_steps

    def test_histogram_covers_every_step(self, result):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.record_result(result)
        hist = telemetry.registry.snapshot().histograms["teg.power_w"]
        assert hist.total == len(result.records)
        assert hist.sum == pytest.approx(
            float(result.generation_series_w.sum()))

    def test_simulator_records_when_session_active(self):
        trace = common_trace(n_servers=40, duration_s=3600.0,
                             interval_s=300.0, seed=3)
        telemetry = Telemetry()
        with obs.session(telemetry):
            result = DatacenterSimulator(trace, teg_original()).run()
        counters = telemetry.registry.snapshot().counters
        assert counters["sim.runs"] == 1
        assert counters["sim.steps"] == len(result.records)
        assert telemetry.tracer.snapshot()["sim.run"]["count"] == 1

    def test_simulator_is_bit_identical_with_telemetry(self):
        trace = common_trace(n_servers=40, duration_s=3600.0,
                             interval_s=300.0, seed=3)
        plain = DatacenterSimulator(trace, teg_original()).run()
        with obs.session(Telemetry()):
            observed = DatacenterSimulator(trace, teg_original()).run()
        assert observed.records == plain.records

"""Tracer span trees: nesting, accumulation, serialisation, merging."""

import time

from repro.obs import NULL_SPAN, Tracer


class TestTracer:
    def test_nesting_builds_hierarchy(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        tree = tracer.snapshot()
        assert list(tree) == ["outer"]
        outer = tree["outer"]
        assert outer["count"] == 1
        assert outer["children"]["inner"]["count"] == 2

    def test_reentry_accumulates_into_one_node(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("hot"):
                pass
        tree = tracer.snapshot()
        assert tree["hot"]["count"] == 3
        assert "children" not in tree["hot"]

    def test_times_are_positive_and_nested_le_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        tree = tracer.snapshot()
        outer, inner = tree["outer"], tree["outer"]["children"]["inner"]
        assert inner["wall_s"] >= 0.01
        assert outer["wall_s"] >= inner["wall_s"]

    def test_depth_tracks_stack(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.span("a"):
            assert tracer.depth == 1
            with tracer.span("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0

    def test_exception_still_pops(self):
        tracer = Tracer()
        try:
            with tracer.span("risky"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.depth == 0
        assert tracer.snapshot()["risky"]["count"] == 1

    def test_merge_adds_counts_and_times(self):
        a, b = Tracer(), Tracer()
        for tracer in (a, b):
            with tracer.span("run"):
                with tracer.span("phase"):
                    pass
        a.merge(b.snapshot())
        tree = a.snapshot()
        assert tree["run"]["count"] == 2
        assert tree["run"]["children"]["phase"]["count"] == 2

    def test_merge_into_empty_reproduces_tree(self):
        source = Tracer()
        with source.span("x"):
            with source.span("y"):
                pass
        target = Tracer()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()


class TestNullSpan:
    def test_is_a_shared_noop_context_manager(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        # Reentrant and exception-transparent.
        try:
            with NULL_SPAN:
                with NULL_SPAN:
                    raise KeyError("x")
        except KeyError:
            pass

"""Whole-trace kernel tests: parity, columnar store, mode plumbing.

The kernel pipeline (``repro.core.kernel``) collapses the simulator's
time loop into NumPy planes.  Its contract is the same as the engine's:
**bit-identical** records, violations and errors versus the serial
:class:`~repro.core.simulator.DatacenterSimulator` — these tests enforce
it on awkward shapes (trailing underpopulated circulation), on every
policy kind, and on the error paths.
"""

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import (
    SimulationConfig,
    teg_loadbalance,
    teg_original,
)
from repro.core.engine import (
    EXECUTION_MODES,
    CoolingDecisionCache,
    _CachedVectorisedSimulator,
    resolve_mode,
    simulate,
)
from repro.core.results import ColumnarSteps, StepRecord
from repro.core.simulator import DatacenterSimulator, compare_schemes
from repro.cooling.cdu import CoolingSetting
from repro.cooling.loop import WaterCirculation
from repro.errors import (
    ConfigurationError,
    CoolingFailureError,
    PhysicalRangeError,
)
from repro.faults import FaultSchedule, FaultSpec
from repro.workloads.synthetic import common_trace, drastic_trace
from repro.workloads.trace import WorkloadTrace

#: 47 servers with circulation_size=20 -> groups of 20, 20 and a
#: trailing, underpopulated group of 7.
TRAILING_TRACE_KWARGS = dict(n_servers=47, duration_s=2 * 3600.0,
                             interval_s=300.0, seed=7)

ALL_CONFIGS = [
    teg_original(),
    teg_loadbalance(),
    SimulationConfig(name="analytic", policy="analytic"),
    SimulationConfig(name="static", policy="static"),
    SimulationConfig(name="threshold", scheduler="threshold",
                     threshold_cap=0.5),
]


def trailing_trace():
    return drastic_trace(**TRAILING_TRACE_KWARGS)


class TestModeResolution:
    def test_default_is_kernel(self):
        assert resolve_mode(None) == "kernel"

    def test_unvectorised_default_is_loop(self):
        assert resolve_mode(None, vectorised=False) == "loop"

    def test_explicit_mode_wins_over_vectorised(self):
        assert resolve_mode("step", vectorised=False) == "step"

    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_known_modes_pass_through(self, mode):
        assert resolve_mode(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_mode("warp")


class TestKernelParity:
    """Kernel records == serial records, bit for bit."""

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_trailing_group_parity_all_modes(self, config):
        trace = trailing_trace()
        serial = DatacenterSimulator(trace, config).run()
        for mode in EXECUTION_MODES:
            fast = simulate(trace, config, mode=mode)
            assert fast.records == serial.records, mode
            assert fast.violations == serial.violations, mode

    def test_kernel_result_is_columnar(self):
        result = simulate(trailing_trace(), teg_original(), mode="kernel")
        assert isinstance(result.records, ColumnarSteps)
        assert result.metrics.mode == "kernel"
        timings = result.metrics.kernel
        assert timings is not None
        assert timings.total_s > 0
        assert set(timings.summary()) == {
            "decide_s", "evaluate_s", "reduce_s", "fold_s", "total_s"}

    def test_step_and_loop_modes_report_no_kernel_timings(self):
        trace = trailing_trace()
        assert simulate(trace, teg_original(),
                        mode="step").metrics.kernel is None
        assert simulate(trace, teg_original(),
                        mode="loop").metrics.kernel is None

    def test_compare_schemes_parity_across_paths(self):
        trace = trailing_trace()
        reference = compare_schemes(trace, teg_original(),
                                    teg_loadbalance())
        for mode in EXECUTION_MODES:
            comparison = compare_schemes(trace, teg_original(),
                                         teg_loadbalance(), mode=mode)
            assert comparison.baseline.records == \
                reference.baseline.records, mode
            assert comparison.optimised.records == \
                reference.optimised.records, mode
            assert comparison.generation_improvement == \
                reference.generation_improvement, mode

    def test_violation_log_parity(self):
        # A deliberately hot static setting produces violations the
        # non-strict path must log identically (ids, times, temps).
        trace = trailing_trace()
        hot = SimulationConfig(
            name="hot", scheduler="none", policy="static",
            static_setting=CoolingSetting(flow_l_per_h=30.0,
                                          inlet_temp_c=55.0))
        serial = DatacenterSimulator(trace, hot).run()
        kernel = simulate(trace, hot, mode="kernel")
        assert serial.violations  # scenario must actually violate
        assert kernel.violations == serial.violations
        assert kernel.records == serial.records

    def test_strict_safety_error_parity(self):
        trace = trailing_trace()
        hot = SimulationConfig(
            name="hot", scheduler="none", policy="static",
            strict_safety=True,
            static_setting=CoolingSetting(flow_l_per_h=30.0,
                                          inlet_temp_c=55.0))
        errors = {}
        for label, run in (
                ("serial",
                 DatacenterSimulator(trace, hot).run),
                ("kernel",
                 lambda: simulate(trace, hot, mode="kernel"))):
            with pytest.raises(CoolingFailureError) as excinfo:
                run()
            exc = excinfo.value
            errors[label] = (str(exc), exc.server_id, exc.temperature_c,
                             exc.step_index)
        assert errors["serial"] == errors["kernel"]

    def test_tower_capacity_error_parity(self):
        trace = trailing_trace()
        config = teg_original()
        errors = {}
        for label, sim in (
                ("serial", DatacenterSimulator(trace, config)),
                ("kernel", _CachedVectorisedSimulator(
                    trace, config, cache=CoolingDecisionCache(),
                    mode="kernel"))):
            for circulation in sim._circulations:
                circulation.tower = replace(circulation.tower,
                                            max_heat_kw=0.3)
            with pytest.raises(PhysicalRangeError) as excinfo:
                sim.run()
            errors[label] = str(excinfo.value)
        assert errors["serial"] == errors["kernel"]

    def test_trace_subclass_falls_back_to_step_mode(self):
        # Subclasses may override step(); the kernel reads the plane
        # directly and would bypass them, so it must not engage.
        class Halved(WorkloadTrace):
            def step(self, index):
                return super().step(index) / 2.0

        base = trailing_trace()
        halved = Halved(base.utilisation, base.interval_s, name="halved")
        result = simulate(halved, teg_original())
        assert result.metrics.mode == "step"
        serial = DatacenterSimulator(halved, teg_original()).run()
        assert result.records == serial.records


class TestFaultShadowSkip:
    """The healthy shadow evaluation only runs while a fault is active."""

    def schedule(self):
        # Active for exactly two control intervals: t in [600, 1200).
        return FaultSchedule(specs=(
            FaultSpec(kind="sensor_bias", start_s=600.0,
                      duration_s=600.0, magnitude=0.05),), seed=3)

    def test_shadow_skipped_on_inactive_steps(self, monkeypatch):
        trace = common_trace(n_servers=40, duration_s=6 * 300.0,
                             interval_s=300.0, seed=5)
        calls = []
        original = WaterCirculation.evaluate

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(WaterCirculation, "evaluate", counting)
        sim = DatacenterSimulator(trace, teg_original(),
                                  faults=self.schedule())
        sim.run()
        n_circs = sim.n_circulations
        active_steps = 2  # t = 600 and t = 900
        expected = (trace.n_steps + active_steps) * n_circs
        assert len(calls) == expected

    def test_inactive_schedule_matches_nominal_run(self):
        # A schedule that never activates must leave the records
        # bit-identical to the nominal simulator (the skip path *is*
        # the nominal arithmetic).
        trace = common_trace(n_servers=40, duration_s=4 * 300.0,
                             interval_s=300.0, seed=5)
        never = FaultSchedule(specs=(
            FaultSpec(kind="pump_stall", start_s=1e9,
                      duration_s=60.0),), seed=3)
        nominal = DatacenterSimulator(trace, teg_original()).run()
        faulted = DatacenterSimulator(trace, teg_original(),
                                      faults=never).run()
        assert faulted.records == nominal.records
        assert faulted.total_lost_harvest_kwh == 0.0


class TestColumnarSteps:
    """The struct-of-arrays record store behind kernel results."""

    def result(self):
        return simulate(trailing_trace(), teg_original(), mode="kernel")

    def test_lazy_records_match_serial_objects(self):
        columnar = self.result().records
        serial = DatacenterSimulator(trailing_trace(),
                                     teg_original()).run().records
        assert len(columnar) == len(serial)
        assert isinstance(columnar[0], StepRecord)
        assert columnar[0] == serial[0]
        assert columnar[-1] == serial[-1]
        assert columnar[2:5] == serial[2:5]
        assert list(columnar) == serial

    def test_equality_is_symmetric_with_lists(self):
        columnar = self.result().records
        as_list = list(columnar)
        assert columnar == as_list
        assert as_list == columnar  # list defers via NotImplemented
        assert columnar == self.result().records
        assert columnar != as_list[:-1]

    def test_append_rejected(self):
        result = self.result()
        with pytest.raises(ConfigurationError):
            result.append(result.records[0])

    def test_pickle_round_trip(self):
        records = self.result().records
        clone = pickle.loads(pickle.dumps(records))
        assert isinstance(clone, ColumnarSteps)
        assert clone == records

    def test_columns_are_read_only(self):
        records = self.result().records
        with pytest.raises(ValueError):
            records.column("chiller_power_w")[0] = 1.0

    def test_unknown_column_rejected(self):
        with pytest.raises(ConfigurationError):
            self.result().records.column("enthalpy")

    def test_aggregates_match_serial(self):
        kernel = self.result()
        serial = DatacenterSimulator(trailing_trace(),
                                     teg_original()).run()
        assert kernel.average_generation_w == serial.average_generation_w
        assert kernel.peak_generation_w == serial.peak_generation_w
        assert kernel.average_pre == serial.average_pre
        assert kernel.total_safety_violations == \
            serial.total_safety_violations


class TestKernelBatchEscapeHatch:
    """REPRO_KERNEL_BATCH=0 falls back to the scalar decide loop."""

    def trace(self):
        return drastic_trace(n_servers=47, duration_s=24 * 300.0,
                             interval_s=300.0, seed=7)

    def test_scalar_path_is_bit_identical(self, monkeypatch):
        from repro.core.kernel import KERNEL_BATCH_ENV_VAR

        trace = self.trace()
        batched = simulate(trace, teg_original(), mode="kernel")
        monkeypatch.setenv(KERNEL_BATCH_ENV_VAR, "0")
        scalar = simulate(trace, teg_original(), mode="kernel")
        assert scalar.records == batched.records
        assert scalar.violations == batched.violations

    def test_escape_hatch_really_avoids_the_batch_api(self, monkeypatch):
        from repro.control.cooling_policy import LookupSpacePolicy
        from repro.core.kernel import KERNEL_BATCH_ENV_VAR

        calls = []

        original = LookupSpacePolicy.decide_batch

        def spy(self, bindings):
            calls.append(len(bindings))
            return original(self, bindings)

        monkeypatch.setattr(LookupSpacePolicy, "decide_batch", spy)
        trace = self.trace()
        simulate(trace, teg_original(), mode="kernel")
        assert calls  # default path goes through decide_batch
        calls.clear()
        monkeypatch.setenv(KERNEL_BATCH_ENV_VAR, "0")
        simulate(trace, teg_original(), mode="kernel")
        assert calls == []  # scalar loop never touches it

    def test_other_values_keep_the_batched_path(self, monkeypatch):
        from repro.control.cooling_policy import LookupSpacePolicy
        from repro.core.kernel import KERNEL_BATCH_ENV_VAR

        calls = []
        original = LookupSpacePolicy.decide_batch

        def spy(self, bindings):
            calls.append(len(bindings))
            return original(self, bindings)

        monkeypatch.setattr(LookupSpacePolicy, "decide_batch", spy)
        for value in ("1", "true", "", "off"):
            calls.clear()
            monkeypatch.setenv(KERNEL_BATCH_ENV_VAR, value)
            simulate(self.trace(), teg_original(), mode="kernel")
            assert calls, f"value {value!r} unexpectedly disabled batching"

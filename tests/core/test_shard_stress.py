"""Soak the sharded path: shared-memory and fd lifecycle under load.

Many sharded batches flow through one persistent engine; afterwards the
process must hold no extra ``/dev/shm`` segments and (to a small slack)
no extra file descriptors, and the executor must have been launched
exactly once.  These are marked ``slow`` — they trade runtime for
leak coverage the fast suite cannot afford.
"""

import os
from pathlib import Path

import pytest

from repro.core.config import teg_loadbalance, teg_original
from repro.core.engine import BatchSimulationEngine, SimulationJob
from repro.core.shard import simulate_sharded
from repro.faults import FaultSchedule, FaultSpec
from repro.workloads.synthetic import common_trace, drastic_trace

SHM_DIR = Path("/dev/shm")
FD_DIR = Path("/proc/self/fd")

pytestmark = pytest.mark.slow


def shm_segments():
    if not SHM_DIR.is_dir():  # pragma: no cover - non-Linux fallback
        return set()
    return {entry.name for entry in SHM_DIR.iterdir()}


def open_fds():
    if not FD_DIR.is_dir():  # pragma: no cover - non-Linux fallback
        return 0
    return len(list(FD_DIR.iterdir()))


def make_jobs(seed):
    trace = common_trace(n_servers=40, duration_s=4 * 3600.0,
                         interval_s=300.0, seed=seed)
    return [SimulationJob(trace=trace, config=config)
            for config in (teg_original(), teg_loadbalance())]


class TestSharedMemorySoak:

    @pytest.mark.parametrize("prefer", ["process", "thread"])
    def test_many_batches_leak_nothing(self, prefer):
        segments_before = shm_segments()
        fds_before = open_fds()
        with BatchSimulationEngine(n_workers=2, prefer=prefer,
                                   shard=True, shard_servers=20,
                                   shard_steps=13) as engine:
            for round_index in range(4):
                batch = engine.run(make_jobs(seed=round_index))
                assert not batch.failures
                assert batch.metrics.shards > 0
                # Segments are cached one-per-distinct-trace for reuse;
                # growth beyond that (e.g. one per shard) is a leak.
                assert len(engine._shared_traces) <= round_index + 1
            assert engine.executor_launches == 1
        assert shm_segments() == segments_before
        # A couple of fds of slack: the pool's control pipes come and
        # go, but growth proportional to batch count is a leak.
        assert open_fds() <= fds_before + 4

    def test_interleaved_sharded_and_whole_jobs(self):
        segments_before = shm_segments()
        with BatchSimulationEngine(n_workers=2, prefer="process",
                                   shard=True, shard_servers=20,
                                   shard_steps=13) as engine:
            sharded = engine.run(make_jobs(seed=0))
            engine.shard = False
            whole = engine.run(make_jobs(seed=0))
            engine.shard = True
            assert engine.executor_launches == 1
        assert sharded.metrics.shards > 0
        for a, b in zip(sharded.results, whole.results):
            assert a.records == b.records
        assert shm_segments() == segments_before

    def test_fault_jobs_soak(self):
        # Fault shards run sequentially in-process; soak them too so the
        # carried policy/cache chain cannot pin memory or segments.
        segments_before = shm_segments()
        faults = FaultSchedule(
            specs=(FaultSpec(kind="sensor_noise", magnitude=0.4,
                             start_s=600.0),),
            seed=11)
        trace = drastic_trace(n_servers=47, duration_s=2 * 3600.0,
                              interval_s=300.0, seed=7)
        with BatchSimulationEngine(n_workers=2, prefer="process",
                                   shard=True, shard_steps=5) as engine:
            for _ in range(3):
                batch = engine.run([SimulationJob(
                    trace=trace, config=teg_original(), faults=faults)])
                assert not batch.failures
                assert batch.metrics.shards > 0
        assert shm_segments() == segments_before

    def test_repeated_direct_simulate_sharded(self):
        # The convenience entry point spins its own engine per call;
        # hammer it to catch unlink-on-close regressions.
        segments_before = shm_segments()
        trace = drastic_trace(n_servers=47, duration_s=2 * 3600.0,
                              interval_s=300.0, seed=7)
        results = [simulate_sharded(trace, teg_original(),
                                    shard_servers=20, shard_steps=5)
                   for _ in range(5)]
        for result in results[1:]:
            assert result.records == results[0].records
        assert shm_segments() == segments_before

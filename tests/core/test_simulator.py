"""Datacenter simulator tests."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig, teg_loadbalance, teg_original
from repro.core.simulator import DatacenterSimulator, compare_schemes
from repro.errors import ConfigurationError, CoolingFailureError
from repro.workloads.trace import WorkloadTrace


def flat_trace(util=0.3, steps=4, servers=40, name="flat"):
    return WorkloadTrace(np.full((steps, servers), util), 300.0, name)


class TestConstruction:
    def test_too_few_servers_rejected(self):
        trace = flat_trace(servers=5)
        with pytest.raises(ConfigurationError):
            DatacenterSimulator(trace, SimulationConfig(
                circulation_size=20))

    def test_partitioning(self):
        trace = flat_trace(servers=50)
        sim = DatacenterSimulator(trace, SimulationConfig(
            circulation_size=20))
        # 20 + 20 + 10 (trailing partial circulation).
        assert sim.n_circulations == 3

    def test_exact_partitioning(self):
        sim = DatacenterSimulator(flat_trace(servers=40),
                                  SimulationConfig(circulation_size=20))
        assert sim.n_circulations == 2


class TestTraceWidthGuard:
    def test_narrower_trace_raises_configuration_error(self):
        # Swapping in a trace with fewer servers than the simulator was
        # partitioned for must fail loudly, not with a bare IndexError.
        sim = DatacenterSimulator(flat_trace(servers=40),
                                  SimulationConfig(circulation_size=20))
        sim.trace = flat_trace(servers=30)
        with pytest.raises(ConfigurationError, match="partitioned for 40"):
            sim.run()

    def test_wider_trace_also_rejected(self):
        sim = DatacenterSimulator(flat_trace(servers=40),
                                  SimulationConfig(circulation_size=20))
        sim.trace = flat_trace(servers=60)
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_matching_trace_still_runs(self):
        sim = DatacenterSimulator(flat_trace(servers=40),
                                  SimulationConfig(circulation_size=20))
        sim.trace = flat_trace(util=0.5, servers=40)
        assert len(sim.run().records) == 4


class TestRun:
    def test_records_per_step(self):
        sim = DatacenterSimulator(flat_trace(steps=6),
                                  SimulationConfig(circulation_size=20))
        result = sim.run()
        assert len(result.records) == 6
        assert result.n_servers == 40

    def test_constant_trace_constant_output(self):
        result = DatacenterSimulator(
            flat_trace(steps=5), SimulationConfig(circulation_size=20)
        ).run()
        gens = result.generation_series_w
        assert np.allclose(gens, gens[0])

    def test_generation_in_paper_ballpark(self):
        result = DatacenterSimulator(
            flat_trace(util=0.25, steps=3),
            SimulationConfig(circulation_size=20)).run()
        assert 3.0 < result.average_generation_w < 5.5

    def test_safety_respected_under_lookup_policy(self):
        result = DatacenterSimulator(
            flat_trace(util=0.9, steps=3),
            SimulationConfig(circulation_size=20)).run()
        assert result.total_safety_violations == 0

    def test_strict_safety_raises_on_static_overheat(self):
        from repro.thermal.cpu_model import CoolingSetting

        config = SimulationConfig(
            policy="static", strict_safety=True,
            static_setting=CoolingSetting(flow_l_per_h=20.0,
                                          inlet_temp_c=58.0))
        sim = DatacenterSimulator(flat_trace(util=1.0, steps=2), config)
        with pytest.raises(CoolingFailureError) as excinfo:
            sim.run()
        assert excinfo.value.temperature_c > 78.9

    def test_mean_inlet_recorded(self):
        result = DatacenterSimulator(
            flat_trace(steps=2), SimulationConfig(circulation_size=20)
        ).run()
        record = result.records[0]
        assert 20.0 <= record.mean_inlet_temp_c <= 60.0
        assert record.mean_flow_l_per_h > 0.0


class TestSchemeBehaviour:
    def test_loadbalance_beats_original_on_skewed_load(self):
        # Alternating busy/idle servers inside every circulation:
        # balancing must help (scheduling happens per circulation).
        matrix = np.zeros((3, 40))
        matrix[:, ::2] = 0.55
        matrix[:, 1::2] = 0.05
        trace = WorkloadTrace(matrix, 300.0, "skewed")
        comparison = compare_schemes(trace, teg_original(),
                                     teg_loadbalance())
        assert comparison.generation_improvement > 0.02

    def test_balanced_trace_sees_no_benefit(self):
        # Already-uniform load leaves nothing for the balancer to do.
        trace = flat_trace(util=0.4, steps=3)
        comparison = compare_schemes(trace, teg_original(),
                                     teg_loadbalance())
        assert abs(comparison.generation_improvement) < 0.02

    def test_analytic_policy_runs(self):
        result = DatacenterSimulator(
            flat_trace(steps=2),
            SimulationConfig(policy="analytic", circulation_size=20)).run()
        assert result.average_generation_w > 0.0

    def test_threshold_scheduler_between_extremes(self):
        matrix = np.zeros((3, 40))
        matrix[:, :8] = 0.8
        matrix[:, 8:] = 0.1
        trace = WorkloadTrace(matrix, 300.0, "spiky")
        none = DatacenterSimulator(trace, teg_original()).run()
        ideal = DatacenterSimulator(trace, teg_loadbalance()).run()
        threshold = DatacenterSimulator(trace, SimulationConfig(
            name="threshold", scheduler="threshold", threshold_cap=0.5,
        )).run()
        assert none.average_generation_w - 0.05 \
            <= threshold.average_generation_w \
            <= ideal.average_generation_w + 0.05

"""H2P facade tests."""

import pytest

from repro.core.h2p import H2PSystem
from repro.thermal.cpu_model import CoolingSetting


@pytest.fixture(scope="module")
def system():
    return H2PSystem()


class TestPointEvaluations:
    def test_server_generation(self, system):
        setting = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=50.0)
        power = system.server_generation_w(0.2, setting)
        assert 2.5 < power < 5.0

    def test_generation_rises_with_inlet(self, system):
        cool = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=40.0)
        warm = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=52.0)
        assert system.server_generation_w(0.2, warm) > \
            system.server_generation_w(0.2, cool)

    def test_server_pre_in_band(self, system):
        setting = CoolingSetting(flow_l_per_h=150.0, inlet_temp_c=53.0)
        pre = system.server_pre(0.22, setting)
        assert 0.10 < pre < 0.20

    def test_safety_check(self, system):
        safe = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=45.0)
        unsafe = CoolingSetting(flow_l_per_h=20.0, inlet_temp_c=58.0)
        assert system.is_safe(1.0, safe)
        assert not system.is_safe(1.0, unsafe)


class TestTraceWorkflows:
    def test_evaluate_defaults_to_original(self, system, tiny_traces):
        result = system.evaluate(tiny_traces["common"])
        assert result.scheme == "TEG_Original"
        assert result.average_generation_w > 0.0

    def test_compare_defaults(self, system, tiny_traces):
        comparison = system.compare(tiny_traces["common"])
        assert comparison.baseline.scheme == "TEG_Original"
        assert comparison.optimised.scheme == "TEG_LoadBalance"


class TestEconomicsBridge:
    def test_tco_breakdown(self, system):
        breakdown = system.tco(4.177)
        assert breakdown.reduction_fraction == pytest.approx(0.0057,
                                                             abs=0.0004)

"""Seasonal study tests."""

import pytest

from repro.core.seasonal import (
    MONTH_NAMES,
    SeasonalStudy,
    annual_summary,
)
from repro.environment import ColdSourceProfile, WetBulbProfile
from repro.errors import PhysicalRangeError
from repro.workloads.synthetic import common_trace


@pytest.fixture(scope="module")
def outcomes():
    trace = common_trace(n_servers=40, duration_s=6 * 3600.0, seed=6)
    return SeasonalStudy(trace=trace).run()


class TestConditions:
    def test_month_index_validated(self):
        study = SeasonalStudy(trace=common_trace(
            n_servers=20, duration_s=3600.0, seed=1))
        with pytest.raises(PhysicalRangeError):
            study.month_conditions(12)

    def test_summer_conditions_warmer(self):
        study = SeasonalStudy(trace=common_trace(
            n_servers=20, duration_s=3600.0, seed=1))
        jan_cold, jan_wb = study.month_conditions(0)
        jul_cold, jul_wb = study.month_conditions(6)
        assert jul_cold > jan_cold
        assert jul_wb > jan_wb


class TestRun:
    def test_twelve_months(self, outcomes):
        assert [outcome.month for outcome in outcomes] == list(MONTH_NAMES)

    def test_cold_source_in_lake_band(self, outcomes):
        low, high = ColdSourceProfile().range_c()
        for outcome in outcomes:
            assert low - 1e-9 <= outcome.cold_source_c <= high + 1e-9

    def test_winter_generates_more(self, outcomes):
        by_month = {outcome.month: outcome.generation_w
                    for outcome in outcomes}
        assert by_month["Jan"] > by_month["Aug"]

    def test_generation_tracks_cold_source(self, outcomes):
        import numpy as np

        cold = np.array([outcome.cold_source_c for outcome in outcomes])
        gen = np.array([outcome.generation_w for outcome in outcomes])
        assert np.corrcoef(cold, gen)[0, 1] < -0.9

    def test_facility_reports_attached(self, outcomes):
        for outcome in outcomes:
            assert outcome.facility.pue > 1.0


class TestAnnualSummary:
    def test_wrong_length_rejected(self, outcomes):
        with pytest.raises(PhysicalRangeError):
            annual_summary(outcomes[:5])

    def test_summary_consistent(self, outcomes):
        summary = annual_summary(outcomes)
        assert summary["generation_min_w"] \
            <= summary["generation_mean_w"] \
            <= summary["generation_max_w"]
        assert 0.0 < summary["seasonal_swing"] < 1.0
        assert summary["worst_month"] in ("Jul", "Aug", "Sep")
        assert summary["best_month"] in ("Dec", "Jan", "Feb", "Mar")

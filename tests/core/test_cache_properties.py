"""Property tests: cache hits are bit-identical under any history.

The hard contract of :mod:`repro.core.cache` is that a hit returns
records byte-equal to recomputing the run — regardless of the order
jobs were executed in, how often they repeat, or where LRU eviction
struck in between.  Hypothesis drives arbitrary interleavings of a
small job pool with eviction points injected between executions and
checks every answer against an uncached golden run.
"""

from hypothesis import given, settings, strategies as st
import numpy as np
import pytest

from repro.core.cache import ResultCache, result_key
from repro.core.config import teg_loadbalance, teg_original, teg_static
from repro.core.engine import SimulationJob, run_batch, simulate
from repro.workloads.trace import WorkloadTrace

CONFIGS = (teg_original, teg_loadbalance, teg_static)


def make_trace(seed):
    rng = np.random.default_rng(seed)
    return WorkloadTrace(rng.random((10, 20)), 300.0,
                         name=f"prop-{seed}")


#: The job pool: (trace seed, config factory index) pairs.
JOB_IDS = [(seed, cfg) for seed in (0, 1) for cfg in range(len(CONFIGS))]

#: One history step: execute job i (0..5), or -1 = evict everything.
steps = st.lists(st.integers(min_value=-1, max_value=len(JOB_IDS) - 1),
                 min_size=1, max_size=12)


@pytest.fixture(scope="module")
def golden():
    """Uncached reference results, one per distinct job."""
    return {
        (seed, cfg): simulate(make_trace(seed), CONFIGS[cfg]())
        for seed, cfg in JOB_IDS
    }


class TestHitBitIdentity:
    @given(history=steps)
    @settings(max_examples=20, deadline=None)
    def test_any_order_any_eviction(self, history, golden, tmp_path_factory):
        store = ResultCache(tmp_path_factory.mktemp("cache"))
        for step in history:
            if step < 0:
                # An eviction point: the cap shrinks to nothing and
                # every entry (results and warm snapshots) goes.
                store.max_bytes = 1
                store._evict()
                store.max_bytes = None
                continue
            seed, cfg = JOB_IDS[step]
            result = simulate(make_trace(seed), CONFIGS[cfg](),
                              result_cache=store)
            reference = golden[(seed, cfg)]
            assert result.records == reference.records
            assert result.violations == reference.violations
            assert result.scheme == reference.scheme
            assert result.trace_name == reference.trace_name

    @given(order=st.permutations(list(range(len(JOB_IDS)))),
           repeat=st.integers(min_value=0, max_value=len(JOB_IDS) - 1))
    @settings(max_examples=10, deadline=None)
    def test_batch_orders(self, order, repeat, golden, tmp_path_factory):
        store = ResultCache(tmp_path_factory.mktemp("cache"))
        ids = [JOB_IDS[i] for i in order] + [JOB_IDS[repeat]]
        jobs = [SimulationJob(make_trace(seed), CONFIGS[cfg]())
                for seed, cfg in ids]
        cold = run_batch(jobs, 2, prefer="thread", cache=store)
        assert cold.ok
        assert cold.metrics.jobs_deduped == 1
        hot = run_batch(jobs, 2, prefer="thread", cache=store)
        assert hot.ok
        assert hot.metrics.result_cache_hits == len(JOB_IDS)
        for batch in (cold, hot):
            for (seed, cfg), result in zip(ids, batch.results):
                reference = golden[(seed, cfg)]
                assert result.records == reference.records
                assert result.violations == reference.violations

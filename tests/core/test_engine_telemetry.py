"""Engine telemetry: executor-independent aggregates and bit-identity.

The ISSUE 5 acceptance property: serial, thread and process execution
of the *same* batch must produce **identical** aggregated counter
totals, and those totals must match the numbers ``BatchResult`` /
``EngineMetrics`` already report through the non-telemetry path.
Telemetry is strictly observational, so records stay bit-identical
with it on or off.
"""

import pickle

import pytest

from repro.core.config import teg_loadbalance, teg_original
from repro.core.engine import run_batch, simulate, SimulationJob
from repro.errors import ConfigurationError
from repro.obs import TelemetrySnapshot
from repro.workloads.synthetic import common_trace, drastic_trace

TRACE_KWARGS = dict(n_servers=40, duration_s=2 * 3600.0,
                    interval_s=300.0)


def _jobs():
    traces = [common_trace(seed=12, **TRACE_KWARGS),
              drastic_trace(seed=10, **TRACE_KWARGS)]
    configs = [teg_original(), teg_loadbalance()]
    return [SimulationJob(trace=trace, config=config)
            for trace in traces for config in configs]


def _run(prefer: str):
    return run_batch(_jobs(), 2, mode="kernel", prefer=prefer,
                     telemetry=True)


class TestExecutorIndependence:
    @pytest.fixture(scope="class")
    def batches(self):
        return {prefer: _run(prefer)
                for prefer in ("serial", "thread", "process")}

    def test_counter_totals_identical_across_executors(self, batches):
        counters = {
            prefer: batch.telemetry.registry.snapshot().counters
            for prefer, batch in batches.items()
        }
        assert counters["serial"] == counters["thread"]
        assert counters["serial"] == counters["process"]

    def test_totals_match_batch_metrics(self, batches):
        for batch in batches.values():
            counters = batch.telemetry.registry.snapshot().counters
            metrics = batch.metrics
            assert counters["sim.runs"] == metrics.n_jobs
            assert counters["sim.steps"] == metrics.total_steps
            assert counters["engine.cache.hits"] == metrics.cache_hits
            assert counters["engine.cache.misses"] \
                == metrics.cache_misses
            assert counters["engine.jobs.submitted"] == metrics.n_jobs
            assert counters["engine.jobs.completed"] == metrics.n_jobs
            assert counters["engine.jobs.retries"] == metrics.retries
            assert counters["engine.jobs.failed"] == 0

    def test_per_job_totals_match_results(self, batches):
        for batch in batches.values():
            counters = batch.telemetry.registry.snapshot().counters
            assert counters["sim.steps"] \
                == sum(len(result.records) for result in batch.results)
            assert counters["sim.safety_violations"] \
                == sum(result.total_safety_violations
                       for result in batch.results)
            assert counters["sim.degraded_steps"] \
                == sum(result.degraded_steps for result in batch.results)

    def test_span_tree_covers_every_job(self, batches):
        for batch in batches.values():
            spans = batch.telemetry.tracer.snapshot()
            assert spans["engine.batch"]["count"] == 1
            assert spans["engine.simulate"]["count"] == len(_jobs())
            kernel = spans["engine.simulate"]["children"]
            for phase in ("kernel.decide", "kernel.evaluate",
                          "kernel.reduce", "kernel.fold"):
                assert kernel[phase]["count"] == len(_jobs())

    def test_batch_events_present(self, batches):
        for batch in batches.values():
            kinds = [event.kind for event in batch.telemetry.events]
            assert kinds.count("batch.start") == 1
            assert kinds.count("batch.end") == 1


class TestObservationalPurity:
    def test_records_bit_identical_with_telemetry(self):
        jobs = _jobs()[:2]
        plain = run_batch(jobs, 1, mode="kernel", prefer="serial")
        observed = run_batch(jobs, 1, mode="kernel", prefer="serial",
                             telemetry=True)
        for a, b in zip(plain.results, observed.results):
            assert a.records == b.records
        assert plain.telemetry is None
        assert observed.telemetry is not None

    def test_simulate_attaches_picklable_snapshot(self):
        trace = common_trace(seed=12, **TRACE_KWARGS)
        result = simulate(trace, teg_original(), mode="kernel",
                          telemetry=True)
        assert isinstance(result.telemetry, TelemetrySnapshot)
        restored = pickle.loads(pickle.dumps(result.telemetry))
        assert restored.metrics.counters["sim.steps"] \
            == len(result.records)

    def test_simulate_without_telemetry_attaches_nothing(self):
        trace = common_trace(seed=12, **TRACE_KWARGS)
        result = simulate(trace, teg_original(), mode="kernel")
        assert result.telemetry is None


class TestFaultTelemetry:
    def test_fault_activations_counted_and_evented(self):
        from repro.faults import FaultSchedule, FaultSpec

        schedule = FaultSchedule(
            specs=[FaultSpec(kind="pump_derate", start_s=600.0,
                             duration_s=1800.0, magnitude=0.5)],
            seed=3)
        job = SimulationJob(trace=common_trace(seed=12, **TRACE_KWARGS),
                            config=teg_original(), faults=schedule)
        batch = run_batch([job], 1, mode="kernel", prefer="serial",
                          telemetry=True)
        counters = batch.telemetry.registry.snapshot().counters
        assert counters["faults.activations"] == 1
        events = batch.telemetry.events.of_kind("fault.activation")
        assert len(events) == 1
        payload = events[0].data
        assert payload["fault"] == "pump_derate"
        assert payload["start_s"] == 600.0
        assert payload["end_s"] == 2400.0


class TestEnvironmentFlag:
    def test_env_enables_batch_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        batch = run_batch(_jobs()[:1], 1, mode="kernel", prefer="serial")
        assert batch.telemetry is not None
        assert batch.telemetry.registry.snapshot().counters["sim.runs"] \
            == 1

    def test_malformed_env_fails_before_any_job(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "sometimes")
        with pytest.raises(ConfigurationError, match="REPRO_TELEMETRY"):
            run_batch(_jobs()[:1], 1, mode="kernel", prefer="serial")

    def test_explicit_false_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        batch = run_batch(_jobs()[:1], 1, mode="kernel",
                          prefer="serial", telemetry=False)
        assert batch.telemetry is None

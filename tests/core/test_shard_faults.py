"""Fault injection under sharding: same physics, same accounting.

Fault-injected jobs shard along time only and the windows execute
sequentially sharing one decision cache and policy instance, because
fault decisions depend on noisy sensor readings whose RNG is keyed on
the *global* step.  These tests pin the user-visible consequences: the
degraded/lost-harvest accounting, violation logs, strict errors and
records of a sharded faulted run are bit-identical to the unsharded
fault path.
"""

import numpy as np
import pytest

from repro.core.config import SimulationConfig, teg_original
from repro.core.engine import (
    BatchSimulationEngine,
    SimulationJob,
    simulate,
)
from repro.core.shard import simulate_sharded
from repro.errors import CoolingFailureError
from repro.faults import FaultSchedule, FaultSpec
from repro.thermal.cpu_model import CoolingSetting
from repro.workloads.synthetic import drastic_trace
from repro.workloads.trace import WorkloadTrace

TRACE_KWARGS = dict(n_servers=47, duration_s=2 * 3600.0,
                    interval_s=300.0, seed=7)


def faulted_trace():
    return drastic_trace(**TRACE_KWARGS)


def mixed_schedule(seed=7):
    """One of each fault family, staggered so activity changes mid-run."""
    return FaultSchedule(specs=(
        FaultSpec(kind="sensor_noise", magnitude=0.15),
        FaultSpec(kind="teg_open_circuit", magnitude=0.3,
                  circulation=1),
        FaultSpec(kind="pump_derate", magnitude=0.4, start_s=1800.0),
        FaultSpec(kind="chiller_excursion", magnitude=4.0,
                  start_s=1200.0, duration_s=1800.0),
    ), seed=seed)


def fault_columns(result):
    return {
        "degraded": [r.degraded_circulations for r in result.records],
        "lost_w": [r.lost_harvest_w for r in result.records],
        "active": [r.active_faults for r in result.records],
    }


class TestFaultShardParity:

    @pytest.mark.parametrize("shard_steps", [5, 1, 7, 24, 48])
    def test_accounting_matches_unsharded(self, shard_steps):
        trace = faulted_trace()
        schedule = mixed_schedule()
        unsharded = simulate(trace, teg_original(), faults=schedule)
        sharded = simulate_sharded(trace, teg_original(),
                                   faults=schedule,
                                   shard_steps=shard_steps)
        assert sharded.records == unsharded.records
        assert sharded.violations == unsharded.violations
        assert fault_columns(sharded) == fault_columns(unsharded)
        assert (sharded.total_lost_harvest_kwh
                == unsharded.total_lost_harvest_kwh)
        assert sharded.degraded_steps == unsharded.degraded_steps
        # Guard the scenario: the schedule must actually bite.
        assert unsharded.total_lost_harvest_kwh > 0.0
        assert unsharded.degraded_steps > 0

    def test_fault_straddles_window_boundary(self):
        # pump_derate starts at step 6 and chiller_excursion ends at
        # step 10; shard_steps=6 puts window boundaries exactly there,
        # and shard_steps=4 puts both mid-window.
        trace = faulted_trace()
        schedule = FaultSchedule(specs=(
            FaultSpec(kind="pump_derate", magnitude=0.5,
                      start_s=6 * 300.0),
            FaultSpec(kind="chiller_excursion", magnitude=5.0,
                      start_s=2 * 300.0, duration_s=8 * 300.0),
        ), seed=3)
        unsharded = simulate(trace, teg_original(), faults=schedule)
        for shard_steps in (6, 4):
            sharded = simulate_sharded(trace, teg_original(),
                                       faults=schedule,
                                       shard_steps=shard_steps)
            assert sharded.records == unsharded.records
            assert fault_columns(sharded) == fault_columns(unsharded)

    def test_server_knob_ignored_for_fault_jobs(self):
        # Faults couple circulations cluster-wide (schedules address
        # circulations globally), so fault shards span every server:
        # a server knob must not change the plan or the result.
        trace = faulted_trace()
        schedule = mixed_schedule()
        narrow = simulate_sharded(trace, teg_original(),
                                  faults=schedule, shard_servers=13,
                                  shard_steps=5)
        wide = simulate_sharded(trace, teg_original(), faults=schedule,
                                shard_steps=5)
        assert narrow.records == wide.records
        assert narrow.metrics.n_shards == wide.metrics.n_shards == 5

    def test_strict_failure_attributes_match(self):
        # Full load arrives at step 7 of 12: the failure happens inside
        # the second 5-step window, so the sharded run must surface the
        # same error with globally indexed attributes.
        rng = np.random.default_rng(2)
        utils = np.vstack([
            0.02 + 0.01 * rng.random((7, 40)),
            np.full((5, 40), 1.0),
        ])
        trace = WorkloadTrace(utils, 300.0, name="late-hot")
        config = SimulationConfig(
            name="unsafe", policy="static", strict_safety=True,
            static_setting=CoolingSetting(flow_l_per_h=20.0,
                                          inlet_temp_c=58.0))
        # A physical fault: derated pumps deliver less flow than the
        # (already aggressive) static setting asks for.  Sensor faults
        # would not do here — implausible readings trigger the
        # conservative fallback, which cools the cluster safely.
        schedule = FaultSchedule(specs=(
            FaultSpec(kind="pump_derate", magnitude=0.3),), seed=7)
        captured = {}
        for label, run in (
                ("unsharded", lambda: simulate(
                    trace, config, faults=schedule)),
                ("sharded", lambda: simulate_sharded(
                    trace, config, faults=schedule, shard_steps=5))):
            with pytest.raises(CoolingFailureError) as excinfo:
                run()
            exc = excinfo.value
            captured[label] = (str(exc), exc.server_id,
                               exc.temperature_c, exc.step_index)
        assert captured["sharded"] == captured["unsharded"]
        assert captured["sharded"][3] >= 7  # failure is in window 2


class TestEngineFaultSharding:

    def test_engine_runs_fault_shards_sequentially(self):
        trace = faulted_trace()
        schedule = mixed_schedule()
        unsharded = simulate(trace, teg_original(), faults=schedule)
        with BatchSimulationEngine(n_workers=2, prefer="process",
                                   shard=True, shard_steps=5) as engine:
            batch = engine.run([SimulationJob(
                trace=trace, config=teg_original(), faults=schedule)])
        assert not batch.failures
        result = batch.results[0]
        assert result.records == unsharded.records
        assert fault_columns(result) == fault_columns(unsharded)
        assert result.metrics.n_shards == 5
        assert batch.metrics.shards == 5

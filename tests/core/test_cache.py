"""Unit tests for the content-addressed result cache (repro.core.cache).

Covers the store in isolation (round-trip bit-identity, corruption
tolerance, LRU eviction, format versioning, key sensitivity), the
environment knobs, the batch-engine integration (dedup, counters,
telemetry) and the warm-start contract.  The hypothesis property suite
lives in ``test_cache_properties.py``; benchmark-scale behaviour in
``benchmarks/test_bench_cache.py``.
"""

import dataclasses
import json
import pickle

import numpy as np
import pytest

from repro.core.cache import (
    CACHE_FORMAT_VERSION,
    CACHE_SCHEMA,
    ResultCache,
    cache_enabled,
    default_cache_dir,
    resolve_cache_dir,
    resolve_cache_max_bytes,
    resolve_result_cache,
    result_key,
    warm_keys,
)
from repro.core.config import teg_loadbalance, teg_original
from repro.core.engine import (
    BatchSimulationEngine,
    SimulationJob,
    run_batch,
    simulate,
)
from repro.core.results import (
    ColumnarSteps,
    SafetyViolation,
    SimulationResult,
    StepRecord,
    STEP_COLUMNS,
    STEP_FLOAT_COLUMNS,
    STEP_INT_COLUMNS,
)
from repro.core.shard import plan_shards, simulate_sharded
from repro.errors import CacheError, ConfigurationError
from repro.teg.module import default_server_module
from repro.workloads.synthetic import common_trace, drastic_trace
from repro.workloads.trace import WorkloadTrace


def make_trace(seed=0, steps=24, servers=40, name="trace"):
    rng = np.random.default_rng(seed)
    return WorkloadTrace(rng.random((steps, servers)), 300.0, name=name)


def synthetic_result(n_steps=6, seed=3, columnar=True, violations=1,
                     scheme="TEG_Original", trace_name="trace"):
    rng = np.random.default_rng(seed)
    columns = {name: rng.random(n_steps) for name in STEP_FLOAT_COLUMNS}
    columns.update({name: rng.integers(0, 5, n_steps).astype(np.int64)
                    for name in STEP_INT_COLUMNS})
    if columnar:
        records = ColumnarSteps(columns)
    else:
        records = [StepRecord(
            **{name: float(columns[name][i])
               for name in STEP_FLOAT_COLUMNS},
            **{name: int(columns[name][i])
               for name in STEP_INT_COLUMNS})
            for i in range(n_steps)]
    viols = [SafetyViolation(server_id=i, step_index=2 * i,
                             time_s=600.0 * i, temperature_c=61.25 + i)
             for i in range(violations)]
    return SimulationResult(scheme=scheme, trace_name=trace_name,
                            n_servers=40, interval_s=300.0,
                            records=records, violations=viols)


def assert_identical(a, b):
    assert a.records == b.records
    assert a.violations == b.violations
    assert a.scheme == b.scheme
    assert a.trace_name == b.trace_name
    assert a.n_servers == b.n_servers
    assert a.interval_s == b.interval_s


class TestRoundTrip:
    def store(self, tmp_path, **kwargs):
        return ResultCache(tmp_path / "cache", **kwargs)

    def test_columnar_bit_identity(self, tmp_path):
        store = self.store(tmp_path)
        result = synthetic_result(columnar=True)
        key = result_key(make_trace(), teg_original())
        store.load(key) is None
        store.store(key, result)
        loaded = store.load(key)
        assert_identical(loaded, result)
        for name in STEP_COLUMNS:
            original = result.records.column(name)
            col = loaded.records.column(name)
            assert col.dtype == original.dtype
            assert col.tobytes() == original.tobytes()

    def test_list_records_round_trip(self, tmp_path):
        store = self.store(tmp_path)
        result = synthetic_result(columnar=False, violations=3)
        key = result_key(make_trace(), teg_original())
        store.store(key, result)
        loaded = store.load(key)
        assert isinstance(loaded.records, list)
        assert_identical(loaded, result)

    def test_simulated_result_with_metrics_round_trips(self, tmp_path):
        store = self.store(tmp_path)
        trace = make_trace()
        result = simulate(trace, teg_original())
        key = result_key(trace, teg_original())
        store.store(key, result)
        loaded = store.load(key)
        assert_identical(loaded, result)
        assert loaded.metrics is not None
        assert loaded.metrics.result_cache_hit
        assert loaded.metrics.n_steps == result.metrics.n_steps

    def test_miss_then_hit_counters(self, tmp_path):
        store = self.store(tmp_path)
        key = result_key(make_trace(), teg_original())
        assert store.load(key) is None
        store.store(key, synthetic_result())
        assert store.load(key) is not None
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.stores == 1


class TestKeySensitivity:
    def test_key_varies_with_identity(self):
        trace = make_trace()
        base = result_key(trace, teg_original())
        assert result_key(trace, teg_loadbalance()) != base
        assert result_key(make_trace(seed=9), teg_original()) != base
        assert result_key(trace, teg_original(), mode="loop") != base
        specs = plan_shards(24, 40, 20, shard_steps=12)
        assert result_key(trace, teg_original(), specs=specs) != base
        other = plan_shards(24, 40, 20, shard_steps=8)
        assert result_key(trace, teg_original(), specs=specs) \
            != result_key(trace, teg_original(), specs=other)
        assert result_key(trace, teg_original(),
                          cache_resolution=0.005) != base

    def test_warm_keys_two_level_structure(self):
        trace = make_trace()
        w1, w2 = warm_keys(trace, teg_original(),
                           policy_resolution=0.005)
        # Display name is excluded from both levels.
        renamed = dataclasses.replace(teg_original(), name="Other")
        assert warm_keys(trace, renamed,
                         policy_resolution=0.005) == (w1, w2)
        # A different TEG module flips w1 but keeps w2 (replayable).
        module = dataclasses.replace(default_server_module(),
                                     group_count=3)
        w1b, w2b = warm_keys(trace, teg_original(), None, module,
                             policy_resolution=0.005)
        assert w1b != w1 and w2b == w2
        # A different scheduler flips both.
        w1c, w2c = warm_keys(trace, teg_loadbalance(),
                             policy_resolution=0.005)
        assert w1c != w1 and w2c != w2


class TestCorruption:
    def test_truncated_entry_recovers(self, tmp_path):
        store = ResultCache(tmp_path)
        key = result_key(make_trace(), teg_original())
        result = synthetic_result()
        store.store(key, result)
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[:40])
        assert store.load(key) is None
        assert store.stats.corrupt == 1
        assert not path.exists()
        # Recompute-and-store works after the discard.
        store.store(key, result)
        assert_identical(store.load(key), result)

    def test_garbage_entry_recovers(self, tmp_path):
        store = ResultCache(tmp_path)
        key = result_key(make_trace(), teg_original())
        store.path_for(key).write_bytes(b"not an npz at all")
        assert store.load(key) is None
        assert store.stats.corrupt == 1

    def test_newer_entry_version_raises(self, tmp_path):
        store = ResultCache(tmp_path)
        key = result_key(make_trace(), teg_original())
        store.store(key, synthetic_result())
        raw = store.path_for(key).read_bytes()
        import io
        with np.load(io.BytesIO(raw)) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(bytes(arrays["meta"].tobytes()).decode())
        meta["version"] = CACHE_FORMAT_VERSION + 1
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        store.path_for(key).write_bytes(buffer.getvalue())
        with pytest.raises(CacheError, match="newer"):
            store.load(key)

    def test_corrupt_warm_snapshot_recovers(self, tmp_path):
        store = ResultCache(tmp_path)
        store.store_warm("w1", "w2digest", [("max", 3, 5, "decision")])
        assert store.load_warm("w2digest")["w1"] == "w1"
        store.warm_path("w2digest").write_bytes(b"\x80broken")
        assert store.load_warm("w2digest") is None
        assert not store.warm_path("w2digest").exists()

    def test_newer_warm_version_unused_but_kept(self, tmp_path):
        store = ResultCache(tmp_path)
        payload = {"schema": CACHE_SCHEMA,
                   "version": CACHE_FORMAT_VERSION + 1,
                   "kind": "warm", "w1": "x", "entries": []}
        store.warm_path("w2").write_bytes(pickle.dumps(payload))
        assert store.load_warm("w2") is None
        assert store.warm_path("w2").exists()


class TestManifest:
    def test_manifest_created(self, tmp_path):
        ResultCache(tmp_path / "c")
        manifest = json.loads((tmp_path / "c" / "cache.json").read_text())
        assert manifest == {"schema": CACHE_SCHEMA,
                            "version": CACHE_FORMAT_VERSION}

    def test_newer_directory_refused(self, tmp_path):
        (tmp_path / "cache.json").write_text(json.dumps(
            {"schema": CACHE_SCHEMA,
             "version": CACHE_FORMAT_VERSION + 1}))
        with pytest.raises(CacheError, match="newer"):
            ResultCache(tmp_path)

    def test_foreign_manifest_refused(self, tmp_path):
        (tmp_path / "cache.json").write_text('{"schema": "other/v9"}')
        with pytest.raises(CacheError):
            ResultCache(tmp_path)

    def test_invalid_json_manifest_refused(self, tmp_path):
        (tmp_path / "cache.json").write_text("{nope")
        with pytest.raises(CacheError, match="JSON"):
            ResultCache(tmp_path)

    def test_temp_files_swept_on_open(self, tmp_path):
        store = ResultCache(tmp_path)
        leftover = store._results_dir / ".tmp-crashed"
        leftover.write_bytes(b"partial")
        ResultCache(tmp_path)
        assert not leftover.exists()


class TestEviction:
    def test_lru_evicts_oldest_first(self, tmp_path):
        store = ResultCache(tmp_path)
        keys = [result_key(make_trace(seed=i), teg_original())
                for i in range(3)]
        for i, key in enumerate(keys):
            store.store(key, synthetic_result(seed=i))
        sizes = [store.path_for(k).stat().st_size for k in keys]
        # Age the entries deterministically, newest last.
        import os
        for i, key in enumerate(keys):
            os.utime(store.path_for(key), (1000.0 + i, 1000.0 + i))
        store.max_bytes = sizes[1] + sizes[2]
        store._evict()
        assert not store.path_for(keys[0]).exists()
        assert store.path_for(keys[1]).exists()
        assert store.path_for(keys[2]).exists()
        assert store.stats.evictions == 1

    def test_hit_refreshes_lru_rank(self, tmp_path):
        store = ResultCache(tmp_path)
        keys = [result_key(make_trace(seed=i), teg_original())
                for i in range(2)]
        for i, key in enumerate(keys):
            store.store(key, synthetic_result(seed=i))
        import os
        for i, key in enumerate(keys):
            os.utime(store.path_for(key), (1000.0 + i, 1000.0 + i))
        assert store.load(keys[0]) is not None  # refresh entry 0
        store.max_bytes = store.path_for(keys[0]).stat().st_size
        store._evict()
        assert store.path_for(keys[0]).exists()
        assert not store.path_for(keys[1]).exists()

    def test_cap_applies_at_store_time(self, tmp_path):
        store = ResultCache(tmp_path, max_bytes=1)
        key = result_key(make_trace(), teg_original())
        store.store(key, synthetic_result())
        # The just-stored entry itself is evicted: cap wins.
        assert store.load(key) is None
        assert store.stats.evictions >= 1

    def test_invalid_max_bytes(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path, max_bytes=0)


class TestEnvKnobs:
    def test_cache_enabled_words(self, monkeypatch):
        for word, expected in (("1", True), ("true", True),
                               ("ON", True), ("0", False),
                               ("off", False), ("", False)):
            monkeypatch.setenv("REPRO_CACHE", word)
            assert cache_enabled() is expected
        monkeypatch.delenv("REPRO_CACHE")
        assert cache_enabled() is False
        assert cache_enabled(True) is True

    def test_cache_enabled_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "maybe")
        with pytest.raises(ConfigurationError, match="REPRO_CACHE"):
            cache_enabled()

    def test_dir_resolution_order(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir() == default_cache_dir()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir() == tmp_path / "env"
        assert resolve_cache_dir(tmp_path / "arg") == tmp_path / "arg"

    def test_dir_rejects_blank_and_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "   ")
        with pytest.raises(ConfigurationError, match="REPRO_CACHE_DIR"):
            resolve_cache_dir()
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ConfigurationError, match="not a directory"):
            resolve_cache_dir(blocker)

    def test_max_bytes_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert resolve_cache_max_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1048576")
        assert resolve_cache_max_bytes() == 1048576
        assert resolve_cache_max_bytes(2048) == 2048
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ConfigurationError,
                           match="REPRO_CACHE_MAX_BYTES"):
            resolve_cache_max_bytes()
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "-3")
        with pytest.raises(ConfigurationError, match="positive"):
            resolve_cache_max_bytes()

    def test_resolve_result_cache_contract(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_result_cache(None) is None
        assert resolve_result_cache(False) is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        store = resolve_result_cache(None)
        assert store is not None
        assert store.directory == tmp_path / "env"
        # False still wins over the environment (worker sentinel).
        assert resolve_result_cache(False) is None
        explicit = resolve_result_cache(tmp_path / "arg")
        assert explicit.directory == tmp_path / "arg"
        assert resolve_result_cache(explicit) is explicit


class TestSimulateIntegration:
    def test_hit_is_bit_identical(self, tmp_path):
        trace = common_trace(n_servers=40, duration_s=30 * 300.0,
                             seed=5)
        cold = simulate(trace, teg_original(), result_cache=tmp_path)
        hit = simulate(trace, teg_original(), result_cache=tmp_path)
        assert not cold.metrics.result_cache_hit
        assert hit.metrics.result_cache_hit
        assert_identical(hit, cold)

    def test_trace_subclasses_never_cached(self, tmp_path):
        class OddTrace(WorkloadTrace):
            pass

        matrix = np.random.default_rng(2).random((20, 40))
        trace = OddTrace(matrix, 300.0, name="odd")
        simulate(trace, teg_original(), result_cache=tmp_path)
        again = simulate(trace, teg_original(), result_cache=tmp_path)
        assert not again.metrics.result_cache_hit

    def test_warm_start_direct_same_decisions(self, tmp_path):
        trace = common_trace(n_servers=40, duration_s=30 * 300.0,
                             seed=6)
        cold = simulate(trace, teg_original(), result_cache=tmp_path)
        assert cold.metrics.cache_misses > 0
        renamed = dataclasses.replace(teg_original(), name="Renamed")
        warmed = simulate(trace, renamed, result_cache=tmp_path)
        assert warmed.metrics.cache_misses == 0
        assert warmed.records == cold.records

    def test_warm_start_replay_across_teg_modules(self, tmp_path):
        trace = common_trace(n_servers=40, duration_s=30 * 300.0,
                             seed=7)
        simulate(trace, teg_original(), result_cache=tmp_path)
        module = dataclasses.replace(default_server_module(),
                                     group_count=3)
        warmed = simulate(trace, teg_original(), teg_module=module,
                          result_cache=tmp_path)
        assert warmed.metrics.cache_misses == 0
        golden = simulate(trace, teg_original(), teg_module=module)
        assert warmed.records == golden.records
        assert warmed.violations == golden.violations


class TestShardedIntegration:
    SHARD_KW = dict(shard_servers=40, shard_steps=16)

    def test_sharded_round_trip(self, tmp_path):
        trace = make_trace(steps=32, servers=80)
        cold = simulate_sharded(trace, teg_original(),
                                result_cache=tmp_path / "cache",
                                **self.SHARD_KW)
        hit = simulate_sharded(trace, teg_original(),
                               result_cache=tmp_path / "cache",
                               **self.SHARD_KW)
        assert hit.metrics.result_cache_hit
        assert_identical(hit, cold)

    def test_shard_plan_is_part_of_identity(self, tmp_path):
        trace = make_trace(steps=32, servers=80)
        simulate_sharded(trace, teg_original(),
                         result_cache=tmp_path, **self.SHARD_KW)
        other = simulate_sharded(trace, teg_original(),
                                 result_cache=tmp_path,
                                 shard_servers=40, shard_steps=8)
        assert not other.metrics.result_cache_hit

    def test_cache_composes_with_checkpoint_resume(self, tmp_path):
        """Partial checkpoint + cache miss -> resume, store, then hit."""
        trace = make_trace(steps=32, servers=80, name="compose")
        config = teg_original()
        golden = simulate_sharded(trace, config, **self.SHARD_KW)
        ckpt = tmp_path / "ckpt"
        cache = tmp_path / "cache"
        # Build a complete checkpoint, then delete one shard file to
        # model an interrupted run.
        simulate_sharded(trace, config, checkpoint=ckpt,
                         **self.SHARD_KW)
        shard_files = sorted(ckpt.rglob("shard-*.pkl"))
        assert shard_files
        shard_files[0].unlink()
        resumed = simulate_sharded(trace, config, checkpoint=ckpt,
                                   result_cache=cache, **self.SHARD_KW)
        assert not resumed.metrics.result_cache_hit
        assert resumed.metrics.shards_resumed == len(shard_files) - 1
        assert_identical(resumed, golden)
        # The resumed merge was stored: next run hits without touching
        # the checkpoint at all.
        hit = simulate_sharded(trace, config, checkpoint=ckpt,
                               result_cache=cache, **self.SHARD_KW)
        assert hit.metrics.result_cache_hit
        assert_identical(hit, golden)


class TestBatchIntegration:
    def jobs(self, seed=8):
        trace = common_trace(n_servers=40, duration_s=30 * 300.0,
                             seed=seed)
        return [SimulationJob(trace, teg_original()),
                SimulationJob(trace, teg_loadbalance())]

    def test_batch_cold_then_hot(self, tmp_path):
        cold = run_batch(self.jobs(), 2, prefer="thread",
                         cache=tmp_path)
        assert cold.metrics.result_cache_hits == 0
        assert cold.metrics.result_cache_misses == 2
        hot = run_batch(self.jobs(), 2, prefer="thread",
                        cache=tmp_path)
        assert hot.metrics.result_cache_hits == 2
        assert hot.metrics.result_cache_misses == 0
        for job in self.jobs():
            assert_identical(hot.get(job.config.name, job.trace.name),
                             cold.get(job.config.name, job.trace.name))

    def test_batch_dedup_identical_jobs(self, tmp_path):
        jobs = self.jobs() + [self.jobs()[0]]
        trace = jobs[0].trace
        jobs.append(SimulationJob(trace, teg_original()))
        batch = run_batch(jobs, 2, prefer="thread")
        assert batch.ok
        assert batch.metrics.jobs_deduped == 2
        assert len(batch.results) == len(jobs)
        reference = batch.results[0]
        assert batch.results[2] is reference
        assert batch.results[3] is reference

    def test_dedup_spares_trace_subclasses(self):
        class OddTrace(WorkloadTrace):
            pass

        matrix = np.random.default_rng(4).random((20, 40))
        a = OddTrace(matrix, 300.0, name="odd")
        b = OddTrace(matrix.copy(), 300.0, name="odd")
        batch = run_batch([SimulationJob(a, teg_original()),
                           SimulationJob(b, teg_original())], 1)
        # Same content, but distinct subclass instances must both run.
        assert batch.metrics.jobs_deduped == 0

    def test_batch_telemetry_counters_and_summary(self, tmp_path):
        run_batch(self.jobs(), 1, cache=tmp_path)
        hot = run_batch(self.jobs(), 1, cache=tmp_path,
                        telemetry=True)
        counters = hot.telemetry.registry.snapshot().counters
        assert counters["engine.cache.hit"] == 2
        assert counters.get("engine.cache.miss", 0) == 0
        summary = hot.metrics.summary()
        assert summary["result_cache_hits"] == 2
        assert summary["result_cache_misses"] == 0

    def test_prometheus_export_names(self, tmp_path):
        from repro.obs import prometheus_text

        run_batch(self.jobs(), 1, cache=tmp_path)
        hot = run_batch(self.jobs(), 1, cache=tmp_path,
                        telemetry=True)
        text = prometheus_text(hot.telemetry.registry.snapshot())
        # Cache counters carry (scheme, trace) labels; both hits here
        # come from the same two-scheme job pair.
        assert 'repro_engine_cache_hit_total{scheme="' in text
        assert "# TYPE repro_engine_cache_hit_total counter" in text
        hit_lines = [line for line in text.splitlines()
                     if line.startswith("repro_engine_cache_hit_total{")]
        assert sum(float(line.rsplit(" ", 1)[1])
                   for line in hit_lines) == 2

    def test_batch_telemetry_counts_misses(self, tmp_path):
        cold = run_batch(self.jobs(), 1, cache=tmp_path,
                         telemetry=True)
        counters = cold.telemetry.registry.snapshot().counters
        assert counters["engine.cache.miss"] == 2
        assert counters.get("engine.cache.hit", 0) == 0

    def test_engine_reuse_across_runs(self, tmp_path):
        engine = BatchSimulationEngine(n_workers=1, cache=tmp_path)
        engine.run(self.jobs())
        hot = engine.run(self.jobs())
        assert hot.metrics.result_cache_hits == 2

    def test_sharded_batch_pre_check(self, tmp_path):
        trace = drastic_trace(n_servers=80, duration_s=40 * 300.0,
                              seed=9)
        jobs = [SimulationJob(trace, teg_original())]
        kwargs = dict(n_workers=2, prefer="thread", shard=True,
                      shard_servers=40, shard_steps=20,
                      cache=tmp_path)
        cold = run_batch(jobs, **kwargs)
        assert cold.metrics.shards > 0
        assert cold.metrics.result_cache_misses == 1
        hot = run_batch(jobs, **kwargs)
        assert hot.metrics.result_cache_hits == 1
        assert hot.metrics.shards == 0
        assert_identical(hot.results[0], cold.results[0])


class TestConcurrentEngines:
    """Two engines sharing one cache directory (ISSUE 9 satellite).

    The dead-pid temp sweep and the LRU hit-refresh were only ever
    exercised through a single engine; here two
    ``BatchSimulationEngine``s interleave over one directory while
    eviction runs between (and under) them.
    """

    def jobs(self, seed=8):
        trace = common_trace(n_servers=40, duration_s=30 * 300.0,
                             seed=seed)
        return [SimulationJob(trace, teg_original()),
                SimulationJob(trace, teg_loadbalance())]

    def two_engines(self, tmp_path):
        return (BatchSimulationEngine(n_workers=1,
                                      cache=ResultCache(tmp_path)),
                BatchSimulationEngine(n_workers=1,
                                      cache=ResultCache(tmp_path)))

    def test_second_engine_hits_first_engines_entries(self, tmp_path):
        a, b = self.two_engines(tmp_path)
        cold = a.run(self.jobs())
        hot = b.run(self.jobs())
        assert cold.metrics.result_cache_misses == 2
        assert hot.metrics.result_cache_hits == 2
        for job in self.jobs():
            assert_identical(hot.get(job.config.name, job.trace.name),
                             cold.get(job.config.name, job.trace.name))

    def test_peer_eviction_under_a_live_engine(self, tmp_path):
        a, b = self.two_engines(tmp_path)
        cold = a.run(self.jobs())
        # B evicts everything A just stored, out from under A's
        # still-open store.
        b.result_cache.max_bytes = 1
        b.result_cache._evict()
        # Both result entries go (warm-start snapshots count too, so
        # the tally can exceed two).
        assert b.result_cache.stats.evictions >= 2
        assert not list(b.result_cache._results_dir.glob("*.npz"))
        b.result_cache.max_bytes = None
        again = a.run(self.jobs())
        assert again.metrics.result_cache_hits == 0
        assert again.metrics.result_cache_misses == 2
        for job in self.jobs():
            assert_identical(again.get(job.config.name, job.trace.name),
                             cold.get(job.config.name, job.trace.name))

    def test_peer_hit_refreshes_lru_rank_across_engines(self, tmp_path):
        import os

        a, b = self.two_engines(tmp_path)
        a.run(self.jobs())
        store_a, store_b = a.result_cache, b.result_cache
        entries = sorted(store_a._results_dir.glob("*.npz"))
        assert len(entries) == 2
        for i, path in enumerate(entries):
            os.utime(path, (1000.0 + i, 1000.0 + i))
        # B reruns only the first job: a pure hit, which must bump
        # that entry's LRU rank for *every* engine on the directory.
        hot = b.run(self.jobs()[:1])
        assert hot.metrics.result_cache_hits == 1
        refreshed = {p for p in entries
                     if p.stat().st_mtime > 2000.0}
        assert len(refreshed) == 1
        (stale,) = set(entries) - refreshed
        # Shrink the cap by exactly the stale entry's size: the LRU
        # sweep (which also covers warm snapshots) must pick the entry
        # B did *not* just read, even though A never touched either.
        tracked = [p for folder in (store_a._results_dir,
                                    store_a._warm_dir)
                   for p in folder.iterdir()]
        store_a.max_bytes = (sum(p.stat().st_size for p in tracked)
                             - stale.stat().st_size)
        store_a._evict()
        assert store_a.stats.evictions == 1
        assert not stale.exists()
        assert refreshed.pop().exists()

    def test_dead_writer_temp_swept_by_next_engine(self, tmp_path):
        import os
        import subprocess

        a, _ = self.two_engines(tmp_path)
        cold = a.run(self.jobs())
        results_dir = a.result_cache._results_dir
        probe = subprocess.Popen(["sleep", "0"])
        probe.wait()
        dead = results_dir / f"entry.npz.tmp-{probe.pid}-140001-0"
        dead.write_bytes(b"partial write of a crashed engine")
        ours = results_dir / f"entry.npz.tmp-{os.getpid()}-140002-0"
        ours.write_bytes(b"another of our threads, mid-write")
        init = results_dir / "entry.npz.tmp-1-140003-0"
        init.write_bytes(b"a live foreign writer")
        # A fresh engine opening the directory sweeps only the dead
        # writer's leftover; live writers (us, pid 1) keep theirs.
        c = BatchSimulationEngine(n_workers=1,
                                  cache=ResultCache(tmp_path))
        assert not dead.exists()
        assert ours.exists()
        assert init.exists()
        ours.unlink()
        init.unlink()
        hot = c.run(self.jobs())
        assert hot.metrics.result_cache_hits == 2
        for job in self.jobs():
            assert_identical(hot.get(job.config.name, job.trace.name),
                             cold.get(job.config.name, job.trace.name))

    def test_interleaved_engines_with_tiny_cap_stay_correct(self, tmp_path):
        # Both stores evict aggressively (the cap fits at most one
        # entry); every run must still return bit-identical results —
        # a peer's eviction can cost a hit, never correctness.
        reference = {}
        for job in self.jobs():
            result = simulate(job.trace, job.config)
            reference[job.config.name] = result
        cap = 12 * 1024  # roughly one ~10 KiB result entry
        a = BatchSimulationEngine(
            n_workers=1, cache=ResultCache(tmp_path, max_bytes=cap))
        b = BatchSimulationEngine(
            n_workers=1, cache=ResultCache(tmp_path, max_bytes=cap))
        for engine in (a, b, a, b):
            batch = engine.run(self.jobs())
            assert batch.ok
            for job in self.jobs():
                assert_identical(
                    batch.get(job.config.name, job.trace.name),
                    reference[job.config.name])
        assert a.result_cache.stats.evictions \
            + b.result_cache.stats.evictions > 0

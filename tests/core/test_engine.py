"""Batch engine tests: bit-identity, goldens, determinism, fallbacks.

The engine's contract is that its vectorised, cached, parallel path
returns **bit-identical** records to the serial
:class:`~repro.core.simulator.DatacenterSimulator`.  These tests enforce
that contract against the serial path directly, against the committed
golden fixtures in ``tests/golden/``, and across worker counts and
executor fallbacks.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.control.cooling_policy import (
    AnalyticPolicy,
    LookupSpacePolicy,
    StaticPolicy,
)
from repro.core.config import (
    SimulationConfig,
    teg_loadbalance,
    teg_original,
)
from repro.core.engine import (
    BatchSimulationEngine,
    CoolingDecisionCache,
    SimulationJob,
    compare_batch,
    resolve_workers,
    run_batch,
    simulate,
)
from repro.core.simulator import DatacenterSimulator
from repro.errors import ConfigurationError
from repro.workloads.synthetic import common_trace

GOLDEN_DIR = Path(__file__).parent.parent / "golden"

#: Must match tests/golden/regenerate_engine_goldens.py.
GOLDEN_TRACE_KWARGS = dict(n_servers=40, duration_s=4 * 3600.0,
                           interval_s=300.0, seed=12)

util_vectors = arrays(float, st.integers(min_value=2, max_value=16),
                      elements=st.floats(min_value=0.0, max_value=1.0))


def golden_trace():
    return common_trace(**GOLDEN_TRACE_KWARGS)


def load_golden(scheme: str) -> dict:
    path = GOLDEN_DIR / f"engine_{scheme}_common40.json"
    return json.loads(path.read_text())


class TestBitIdentity:
    """Engine output == serial output, exactly, for every policy kind."""

    @pytest.mark.parametrize("config", [
        teg_original(),
        teg_loadbalance(),
        SimulationConfig(name="analytic", policy="analytic"),
        SimulationConfig(name="static", policy="static"),
        SimulationConfig(name="threshold", scheduler="threshold",
                         threshold_cap=0.5),
    ], ids=lambda c: c.name)
    def test_engine_matches_serial_exactly(self, config):
        trace = golden_trace()
        serial = DatacenterSimulator(trace, config).run()
        fast = simulate(trace, config)
        assert fast.records == serial.records
        assert fast == serial  # metrics excluded from equality

    def test_unvectorised_path_also_matches(self):
        trace = golden_trace()
        serial = DatacenterSimulator(trace, teg_original()).run()
        fast = simulate(trace, teg_original(), vectorised=False)
        assert fast.records == serial.records

    def test_metrics_attached(self):
        result = simulate(golden_trace(), teg_original())
        metrics = result.metrics
        assert metrics is not None
        assert metrics.n_steps == len(result.records)
        assert metrics.steps_per_s > 0
        assert metrics.wall_time_s >= metrics.step_time_s
        assert metrics.cache_hits + metrics.cache_misses > 0
        assert metrics.cache_hit_rate > 0  # repeated loads must hit

    def test_serial_result_has_no_metrics(self):
        result = DatacenterSimulator(golden_trace(), teg_original()).run()
        assert result.metrics is None


class TestGoldens:
    """Both paths must reproduce the committed per-step aggregates."""

    FIELDS = ("time_s", "generation_per_cpu_w", "cpu_power_per_cpu_w",
              "max_cpu_temp_c", "chiller_power_w", "tower_power_w",
              "pump_power_w")

    @pytest.mark.parametrize("scheme_factory",
                             [teg_original, teg_loadbalance],
                             ids=lambda f: f.__name__)
    @pytest.mark.parametrize("runner",
                             ["serial", "kernel", "step", "loop"])
    def test_matches_golden(self, scheme_factory, runner):
        config = scheme_factory()
        golden = load_golden(config.name)
        trace = golden_trace()
        if runner == "serial":
            result = DatacenterSimulator(trace, config).run()
        else:
            result = simulate(trace, config, mode=runner)
        assert len(result.records) == golden["n_steps"]
        for name in self.FIELDS:
            actual = np.array([getattr(record, name)
                               for record in result.records])
            expected = np.array(golden["records"][name])
            np.testing.assert_allclose(actual, expected, rtol=0,
                                       atol=1e-9, err_msg=name)

    def test_golden_fixtures_exist_for_both_schemes(self):
        for config in (teg_original(), teg_loadbalance()):
            golden = load_golden(config.name)
            assert golden["scheme"] == config.name
            assert golden["trace"] == dict(GOLDEN_TRACE_KWARGS,
                                           name="common")


class TestBatch:
    """The batch layer: ordering, lookup, aggregate metrics."""

    def jobs(self):
        trace = golden_trace()
        return [SimulationJob(trace=trace, config=config)
                for config in (teg_original(), teg_loadbalance())]

    def test_results_in_submission_order(self):
        batch = run_batch(self.jobs(), n_workers=1)
        assert [r.scheme for r in batch.results] == \
            ["TEG_Original", "TEG_LoadBalance"]

    def test_get_by_key(self):
        batch = run_batch(self.jobs(), n_workers=1)
        result = batch.get("TEG_LoadBalance", "common")
        assert result.scheme == "TEG_LoadBalance"
        with pytest.raises(ConfigurationError):
            batch.get("TEG_LoadBalance", "no-such-trace")

    def test_aggregate_metrics(self):
        batch = run_batch(self.jobs(), n_workers=1)
        metrics = batch.metrics
        assert metrics.n_jobs == 2
        assert metrics.total_steps == 2 * 48
        assert metrics.steps_per_s > 0
        assert 0 < metrics.cache_hit_rate < 1
        summary = metrics.summary()
        assert summary["jobs"] == 2
        assert batch.summaries()[0]["engine"]["steps_per_s"] > 0

    def test_compare_batch_cross_product(self):
        trace = golden_trace()
        batch = compare_batch([trace], [teg_original(), teg_loadbalance()],
                              n_workers=1)
        assert batch.metrics.n_jobs == 2
        assert batch.get("TEG_Original", "common").records

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch([])

    def test_non_job_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(["not a job"])

    def test_bad_prefer_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchSimulationEngine(prefer="fibers")


class TestDeterminism:
    """Same inputs, any worker count or executor: same bits out."""

    def jobs(self):
        trace = golden_trace()
        return [SimulationJob(trace=trace, config=config)
                for config in (teg_original(), teg_loadbalance(),
                               SimulationConfig(name="analytic",
                                                policy="analytic"),
                               SimulationConfig(name="static",
                                                policy="static"))]

    @pytest.mark.slow
    def test_process_pool_matches_serial_worker(self):
        jobs = self.jobs()
        one = run_batch(jobs, n_workers=1)
        four = run_batch(jobs, n_workers=4, prefer="process")
        for a, b in zip(one.results, four.results):
            assert a.records == b.records
        assert one.metrics.executor == "serial"

    def test_thread_pool_matches_serial_worker(self):
        jobs = self.jobs()[:2]
        one = run_batch(jobs, n_workers=1)
        two = run_batch(jobs, n_workers=2, prefer="thread")
        assert two.metrics.executor == "thread"
        for a, b in zip(one.results, two.results):
            assert a.records == b.records

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        jobs = self.jobs()[:2]
        reference = run_batch(jobs, n_workers=1)

        def broken_pool(self, jobs, workers, kind, timeout_s):
            raise OSError("no pools in this sandbox")

        monkeypatch.setattr(BatchSimulationEngine, "_run_pool",
                            broken_pool)
        batch = run_batch(jobs, n_workers=4, prefer="process")
        assert batch.metrics.executor == "serial"
        assert batch.metrics.n_workers == 1
        for a, b in zip(reference.results, batch.results):
            assert a.records == b.records


class TestWorkerResolution:
    """Explicit argument > REPRO_WORKERS > CPU-count default."""

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2, n_jobs=8) == 2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None, n_jobs=8) == 3

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            resolve_workers(None, n_jobs=8)

    def test_default_capped_by_jobs_and_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        import os
        expected = min(3, os.cpu_count() or 1)
        assert resolve_workers(None, n_jobs=3) == expected

    def test_never_below_one_or_above_jobs(self):
        assert resolve_workers(0, n_jobs=5) == 1
        assert resolve_workers(-2, n_jobs=5) == 1
        assert resolve_workers(64, n_jobs=5) == 5


class TestCoolingDecisionCache:
    """The cache must be observationally invisible except for speed."""

    def test_bad_resolution_rejected(self):
        with pytest.raises(ConfigurationError):
            CoolingDecisionCache(resolution=0.0)

    def test_hit_and_miss_counters(self, lookup_space):
        policy = LookupSpacePolicy(space=lookup_space, aggregation="max")
        cache = CoolingDecisionCache()
        utils = np.array([0.2, 0.5])
        first = cache.decide(policy, utils)
        second = cache.decide(policy, utils)
        assert second is first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_context_separates_simulations(self, lookup_space):
        hot = LookupSpacePolicy(space=lookup_space,
                                cold_source_temp_c=25.0)
        cold = LookupSpacePolicy(space=lookup_space,
                                 cold_source_temp_c=15.0)
        cache = CoolingDecisionCache()
        utils = np.array([0.4, 0.4])
        a = cache.decide(hot, utils, context=("hot",))
        b = cache.decide(cold, utils, context=("cold",))
        assert cache.stats.misses == 2
        assert a.predicted_generation_w != b.predicted_generation_w

    @given(util_vectors)
    @settings(max_examples=30, deadline=None)
    def test_lookup_hit_equals_uncached_decision(self, lookup_space,
                                                 utils):
        # A cache hit must return exactly what a fresh policy would:
        # prime with one vector, query with another that lands in the
        # same quantised-binding bucket, compare against an uncached
        # policy sharing the same space.
        cached_policy = LookupSpacePolicy(space=lookup_space)
        cache = CoolingDecisionCache()
        cache.decide(cached_policy, utils)
        hit = cache.decide(cached_policy, utils)
        fresh = LookupSpacePolicy(space=lookup_space)
        assert hit == fresh.decide(utils)

    @given(util_vectors)
    @settings(max_examples=30, deadline=None)
    def test_analytic_hit_equals_uncached_decision(self, utils):
        policy = AnalyticPolicy()
        cache = CoolingDecisionCache()
        cache.decide(policy, utils)
        assert cache.decide(policy, utils) == \
            AnalyticPolicy().decide(utils)

    @given(util_vectors)
    @settings(max_examples=30, deadline=None)
    def test_static_avg_hit_equals_uncached_decision(self, utils):
        policy = StaticPolicy(aggregation="avg")
        cache = CoolingDecisionCache()
        cache.decide(policy, utils)
        assert cache.decide(policy, utils) == \
            StaticPolicy(aggregation="avg").decide(utils)


class TestZeroCopyDispatch:
    """Process-pool jobs ship a trace *handle*, not the trace plane."""

    def test_payload_size_independent_of_trace_length(self):
        import pickle

        short = common_trace(n_servers=40, duration_s=2 * 3600.0,
                             interval_s=300.0, seed=12)
        long = common_trace(n_servers=40, duration_s=48 * 3600.0,
                            interval_s=300.0, seed=12)
        with BatchSimulationEngine() as engine:
            small = len(pickle.dumps(engine._payload(
                SimulationJob(trace=short, config=teg_original()))))
            large = len(pickle.dumps(engine._payload(
                SimulationJob(trace=long, config=teg_original()))))
            job_size = len(pickle.dumps(
                SimulationJob(trace=long, config=teg_original())))
        # The payload must not scale with the trace and must be far
        # smaller than pickling the job (which embeds the matrix).
        assert abs(large - small) < 128
        assert large * 10 < job_size

    def test_one_segment_per_distinct_trace(self):
        trace = golden_trace()
        jobs = [SimulationJob(trace=trace, config=config)
                for config in (teg_original(), teg_loadbalance())]
        with BatchSimulationEngine() as engine:
            for job in jobs:
                engine._payload(job)
            assert len(engine._shared_traces) == 1
        assert len(engine._shared_traces) == 0  # close() unlinked it

    @pytest.mark.slow
    def test_executor_reused_across_runs(self):
        trace = golden_trace()
        jobs = [SimulationJob(trace=trace, config=config)
                for config in (teg_original(), teg_loadbalance())]
        with BatchSimulationEngine(n_workers=2,
                                   prefer="process") as engine:
            first = engine.run(jobs)
            second = engine.run(jobs)
            assert engine.executor_launches == 1
        assert first.metrics.executor == "process"
        for a, b in zip(first.results, second.results):
            assert a.records == b.records

    def test_worker_side_trace_reconstruction_is_exact(self):
        from repro.core.engine import _execute_payload

        trace = golden_trace()
        serial = DatacenterSimulator(trace, teg_original()).run()
        with BatchSimulationEngine() as engine:
            payload = engine._payload(
                SimulationJob(trace=trace, config=teg_original()))
            # Execute the payload in-process: same code path the worker
            # runs, minus the fork.
            result = _execute_payload(payload)
            assert result.records == serial.records

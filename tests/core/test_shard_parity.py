"""Sharded == unsharded, bit for bit (the tentpole guarantee).

Every test compares :func:`repro.core.shard.simulate_sharded` (and the
engine dispatch path where noted) against the unsharded kernel and the
committed golden fixtures: per-step records, violation logs, raised
errors.  Equality is exact — ``==`` on records, not approx — because
the merge is designed to replay the serial arithmetic, not to
approximate it.
"""

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.simulator as simulator_module
from repro.cooling.loop import WaterCirculation
from repro.core.config import (
    SimulationConfig,
    teg_loadbalance,
    teg_original,
)
from repro.core.engine import simulate
from repro.core.shard import simulate_sharded
from repro.core.simulator import DatacenterSimulator
from repro.errors import CoolingFailureError, PhysicalRangeError
from repro.thermal.cpu_model import CoolingSetting
from repro.workloads.synthetic import common_trace, drastic_trace
from repro.workloads.trace import WorkloadTrace

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
GOLDEN_TRACE_KWARGS = dict(n_servers=40, duration_s=4 * 3600.0,
                           interval_s=300.0, seed=12)

#: 47 servers at circulation 20: two full groups plus a ragged 7-server
#: trailer, so every shard grid below also exercises the ragged merge.
TRAILING_TRACE_KWARGS = dict(n_servers=47, duration_s=2 * 3600.0,
                             interval_s=300.0, seed=7)

ALL_CONFIGS = [
    teg_original(),
    teg_loadbalance(),
    SimulationConfig(name="analytic", policy="analytic"),
    SimulationConfig(name="static", policy="static"),
    SimulationConfig(name="threshold", scheduler="threshold",
                     threshold_cap=0.5),
]

#: (shard_servers, shard_steps) grids: width 1 (clamps to one
#: circulation), width above the cluster (clamps to one tile), ragged
#: time windows, single-cell tiles, and one-dimension-only splits.
SHARD_GRIDS = [(20, 8), (1, 1), (100, 1000), (21, 5), (47, 24),
               (None, 7), (13, None)]


def trailing_trace():
    return drastic_trace(**TRAILING_TRACE_KWARGS)


def assert_identical(sharded, unsharded):
    """Records, violations and headline aggregates must match exactly."""
    assert sharded.records == unsharded.records
    assert sharded.violations == unsharded.violations
    assert sharded.scheme == unsharded.scheme
    assert sharded.trace_name == unsharded.trace_name
    assert sharded.average_generation_w == unsharded.average_generation_w


class TestKernelParity:
    """Fault-free tiles across every policy kind and shard grid."""

    @pytest.mark.parametrize("config", ALL_CONFIGS,
                             ids=lambda c: c.name)
    @pytest.mark.parametrize("grid", SHARD_GRIDS,
                             ids=lambda g: f"s{g[0]}xt{g[1]}")
    def test_bit_identical(self, config, grid):
        trace = trailing_trace()
        unsharded = simulate(trace, config, mode="kernel")
        sharded = simulate_sharded(trace, config, shard_servers=grid[0],
                                   shard_steps=grid[1])
        assert_identical(sharded, unsharded)
        assert sharded.metrics.n_shards >= 1

    def test_matches_serial_loop_too(self):
        trace = trailing_trace()
        serial = DatacenterSimulator(trace, teg_original()).run()
        sharded = simulate_sharded(trace, teg_original(),
                                   shard_servers=20, shard_steps=5)
        assert sharded.records == serial.records
        assert sharded.violations == serial.violations

    def test_per_server_circulations(self):
        # circulation_size=1: every server is its own circulation and a
        # width-1 shard is a single server column.
        config = replace(teg_original(), circulation_size=1)
        trace = drastic_trace(n_servers=9, duration_s=6 * 300.0,
                              interval_s=300.0, seed=3)
        unsharded = simulate(trace, config, mode="kernel")
        sharded = simulate_sharded(trace, config, shard_servers=1,
                                   shard_steps=2)
        assert_identical(sharded, unsharded)
        assert sharded.metrics.n_shards == 9 * 3

    def test_violation_log_parity(self):
        # A deliberately hot static setting produces violations the
        # merge must stitch back in exactly the kernel's row-major
        # (step, server) order.
        trace = trailing_trace()
        hot = SimulationConfig(
            name="hot", scheduler="none", policy="static",
            static_setting=CoolingSetting(flow_l_per_h=30.0,
                                          inlet_temp_c=55.0))
        unsharded = simulate(trace, hot, mode="kernel")
        assert unsharded.violations  # scenario must actually violate
        sharded = simulate_sharded(trace, hot, shard_servers=20,
                                   shard_steps=5)
        assert_identical(sharded, unsharded)


class TestDecisionBoundaries:
    """Time boundaries that straddle a cooling-decision change.

    The memoising lookup policy derives a bucket's decision from the
    exact binding that first primes it; these scenarios place a shard
    boundary exactly where the decision changes, so any priming-order
    divergence (the bug the pre-pass exists for) breaks them.
    """

    def two_phase_trace(self, flip_step=6, n_steps=12, n_servers=40):
        # Low load before the flip, high load after: the cooling
        # decision changes exactly at flip_step.
        rng = np.random.default_rng(5)
        low = 0.15 + 0.02 * rng.random((flip_step, n_servers))
        high = 0.75 + 0.02 * rng.random((n_steps - flip_step, n_servers))
        return WorkloadTrace(np.vstack([low, high]), 300.0,
                             name="two-phase")

    @pytest.mark.parametrize("config",
                             [teg_original(), teg_loadbalance()],
                             ids=lambda c: c.name)
    @pytest.mark.parametrize("shard_steps", [6, 5, 7, 1])
    def test_boundary_at_and_around_the_flip(self, config, shard_steps):
        trace = self.two_phase_trace()
        unsharded = simulate(trace, config, mode="kernel")
        sharded = simulate_sharded(trace, config, shard_servers=20,
                                   shard_steps=shard_steps)
        assert_identical(sharded, unsharded)

    def test_decision_actually_changes_at_the_flip(self):
        # Guard the scenario itself: losing the flip would turn the
        # parametrised cases above into trivial passes.
        trace = self.two_phase_trace()
        result = simulate(trace, teg_original(), mode="kernel")
        inlets = np.array([r.mean_inlet_temp_c for r in result.records])
        assert inlets[5] != inlets[6]


class TestGoldenParity:
    """Sharded runs reproduce the committed golden fixtures."""

    FIELDS = ("time_s", "generation_per_cpu_w", "cpu_power_per_cpu_w",
              "max_cpu_temp_c", "chiller_power_w", "tower_power_w",
              "pump_power_w")

    @pytest.mark.parametrize("scheme_factory",
                             [teg_original, teg_loadbalance],
                             ids=lambda f: f.__name__)
    def test_matches_golden(self, scheme_factory):
        config = scheme_factory()
        golden = json.loads(
            (GOLDEN_DIR / f"engine_{config.name}_common40.json")
            .read_text())
        trace = common_trace(**GOLDEN_TRACE_KWARGS)
        result = simulate_sharded(trace, config, shard_servers=20,
                                  shard_steps=13)
        assert len(result.records) == golden["n_steps"]
        for name in self.FIELDS:
            actual = np.array([getattr(record, name)
                               for record in result.records])
            expected = np.array(golden["records"][name])
            np.testing.assert_allclose(actual, expected, rtol=0,
                                       atol=1e-9, err_msg=name)


class TestErrorParity:
    """The globally earliest error is raised with identical attributes."""

    def test_strict_safety_error(self):
        trace = trailing_trace()
        hot = SimulationConfig(
            name="hot", scheduler="none", policy="static",
            strict_safety=True,
            static_setting=CoolingSetting(flow_l_per_h=30.0,
                                          inlet_temp_c=55.0))
        errors = {}
        for label, run in (
                ("kernel", lambda: simulate(trace, hot, mode="kernel")),
                ("sharded", lambda: simulate_sharded(
                    trace, hot, shard_servers=20, shard_steps=5)),
                ("sharded-tiny", lambda: simulate_sharded(
                    trace, hot, shard_servers=1, shard_steps=1))):
            with pytest.raises(CoolingFailureError) as excinfo:
                run()
            exc = excinfo.value
            errors[label] = (str(exc), exc.server_id, exc.temperature_c,
                             exc.step_index)
        assert errors["sharded"] == errors["kernel"]
        assert errors["sharded-tiny"] == errors["kernel"]

    def test_capacity_error(self, monkeypatch):
        # Shrink every tower so the load trips the capacity check; the
        # patch applies to the shard simulators and the reference alike.
        def tiny_tower(**kwargs):
            circulation = WaterCirculation(**kwargs)
            circulation.tower = replace(circulation.tower,
                                        max_heat_kw=0.3)
            return circulation

        monkeypatch.setattr(simulator_module, "WaterCirculation",
                            tiny_tower)
        trace = trailing_trace()
        config = teg_original()
        errors = {}
        for label, run in (
                ("kernel", lambda: simulate(trace, config,
                                            mode="kernel")),
                ("sharded", lambda: simulate_sharded(
                    trace, config, shard_servers=20, shard_steps=5))):
            with pytest.raises(PhysicalRangeError) as excinfo:
                run()
            errors[label] = str(excinfo.value)
        assert errors["sharded"] == errors["kernel"]


class TestPropertyParity:
    """Hypothesis: parity holds over drawn dimensions and shard grids."""

    @settings(max_examples=25, deadline=None)
    @given(
        n_servers=st.integers(min_value=20, max_value=55),
        n_steps=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=2**16),
        shard_servers=st.integers(min_value=1, max_value=60),
        shard_steps=st.integers(min_value=1, max_value=20),
        scheme=st.sampled_from(["original", "loadbalance"]),
    )
    def test_sharded_equals_unsharded(self, n_servers, n_steps, seed,
                                      shard_servers, shard_steps,
                                      scheme):
        factory = {"original": teg_original,
                   "loadbalance": teg_loadbalance}[scheme]
        config = factory()
        trace = drastic_trace(n_servers=n_servers,
                              duration_s=n_steps * 300.0,
                              interval_s=300.0, seed=seed)
        unsharded = simulate(trace, config, mode="kernel")
        sharded = simulate_sharded(trace, config,
                                   shard_servers=shard_servers,
                                   shard_steps=shard_steps)
        assert sharded.records == unsharded.records
        assert sharded.violations == unsharded.violations

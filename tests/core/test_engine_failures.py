"""Engine failure handling: retries, timeouts, crashes, partial results.

The crash/hang traces are defined at module level so process-pool
workers can unpickle them; ``CrashingTrace`` kills its worker with
``os._exit`` (no exception, no cleanup — exactly what a segfault looks
like to the pool) and ``HangingTrace`` sleeps past any test timeout.
"""

import itertools
import os
import time

import numpy as np
import pytest

from repro.core.config import teg_loadbalance, teg_original
from repro.core.engine import (
    BatchSimulationEngine,
    FailedJob,
    JOB_TIMEOUT_ENV_VAR,
    SimulationJob,
    WORKERS_ENV_VAR,
    resolve_job_timeout,
    resolve_workers,
    run_batch,
)
from repro.errors import ConfigurationError, JobExecutionError
from repro.workloads.trace import WorkloadTrace

pytestmark = pytest.mark.faults


def flat_trace(name="flat", steps=6, n_servers=40, util=0.4):
    return WorkloadTrace(name=name, interval_s=300.0,
                         utilisation=np.full((steps, n_servers), util))


class CrashingTrace(WorkloadTrace):
    """Kills the worker process outright on the first step."""

    def step(self, index):
        os._exit(17)


class HangingTrace(WorkloadTrace):
    """Blocks far past any per-job budget used in these tests."""

    def step(self, index):
        time.sleep(60.0)
        return super().step(index)


class FlakyTrace(WorkloadTrace):
    """Raises on the first ``fail_times`` step calls, then recovers.

    Class-level counter: meaningful in thread/serial mode only (process
    workers each unpickle a fresh copy).
    """

    counter = itertools.count()
    fail_times = 2

    def step(self, index):
        if index == 0 and next(FlakyTrace.counter) < self.fail_times:
            raise RuntimeError("transient glitch")
        return super().step(index)


class AlwaysRaises(WorkloadTrace):
    def step(self, index):
        raise ValueError("broken trace")


def subclass_trace(cls, name):
    base = flat_trace(name=name)
    return cls(name=base.name, interval_s=base.interval_s,
               utilisation=base.utilisation)


class TestResolveWorkers:
    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ConfigurationError, match=WORKERS_ENV_VAR):
            resolve_workers(None, 4)

    def test_env_must_be_non_negative(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "-3")
        with pytest.raises(ConfigurationError, match=WORKERS_ENV_VAR):
            resolve_workers(None, 4)

    def test_env_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        assert resolve_workers(None, 4) == 1


class TestResolveJobTimeout:
    def test_unset_means_no_timeout(self, monkeypatch):
        monkeypatch.delenv(JOB_TIMEOUT_ENV_VAR, raising=False)
        assert resolve_job_timeout() is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOB_TIMEOUT_ENV_VAR, "99")
        assert resolve_job_timeout(5.0) == 5.0

    def test_env_parsed_as_seconds(self, monkeypatch):
        monkeypatch.setenv(JOB_TIMEOUT_ENV_VAR, "2.5")
        assert resolve_job_timeout() == 2.5

    @pytest.mark.parametrize("value", ["soon", "0", "-4"])
    def test_bad_env_values_rejected(self, monkeypatch, value):
        monkeypatch.setenv(JOB_TIMEOUT_ENV_VAR, value)
        with pytest.raises(ConfigurationError, match=JOB_TIMEOUT_ENV_VAR):
            resolve_job_timeout()

    def test_explicit_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_job_timeout(0.0)


class TestEngineValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(max_retries=-1),
        dict(retry_backoff_s=-0.5),
        dict(job_timeout_s=0.0),
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchSimulationEngine(**kwargs)


class TestSerialFailureHandling:
    def test_failing_job_yields_partial_results(self):
        jobs = [SimulationJob(trace=flat_trace("ok-1"),
                              config=teg_original()),
                SimulationJob(trace=subclass_trace(AlwaysRaises, "bad"),
                              config=teg_original()),
                SimulationJob(trace=flat_trace("ok-2"),
                              config=teg_loadbalance())]
        batch = run_batch(jobs, n_workers=1, retry_backoff_s=0.0)
        assert not batch.ok
        assert [r.trace_name for r in batch.results] == ["ok-1", "ok-2"]
        assert [f.trace_name for f in batch.failures] == ["bad"]
        failed = batch.failures[0]
        assert failed.error_type == "ValueError"
        assert failed.attempts == 1
        assert batch.metrics.n_failed == 1

    def test_get_on_failed_job_raises_job_execution_error(self):
        jobs = [SimulationJob(trace=subclass_trace(AlwaysRaises, "bad"),
                              config=teg_original())]
        batch = run_batch(jobs, n_workers=1, retry_backoff_s=0.0)
        with pytest.raises(JobExecutionError) as excinfo:
            batch.get("TEG_Original", "bad")
        assert excinfo.value.attempts == 1
        assert not excinfo.value.timed_out

    def test_retry_exhaustion_counts_attempts(self):
        jobs = [SimulationJob(trace=subclass_trace(AlwaysRaises, "bad"),
                              config=teg_original())]
        batch = run_batch(jobs, n_workers=1, max_retries=2,
                          retry_backoff_s=0.0)
        assert batch.failures[0].attempts == 3
        assert batch.metrics.retries == 2

    def test_transient_failure_recovers_with_retry(self):
        FlakyTrace.counter = itertools.count()
        jobs = [SimulationJob(trace=subclass_trace(FlakyTrace, "flaky"),
                              config=teg_original())]
        batch = run_batch(jobs, n_workers=1, max_retries=3,
                          retry_backoff_s=0.0)
        assert batch.ok
        result = batch.results[0]
        assert result.metrics.retries == 2
        assert batch.metrics.retries == 2
        # The recovered run matches an untroubled one exactly.
        clean = run_batch([SimulationJob(trace=flat_trace("flaky"),
                                         config=teg_original())],
                          n_workers=1)
        assert result.records == clean.results[0].records

    def test_no_retries_by_default(self):
        FlakyTrace.counter = itertools.count()
        jobs = [SimulationJob(trace=subclass_trace(FlakyTrace, "flaky"),
                              config=teg_original())]
        batch = run_batch(jobs, n_workers=1)
        assert not batch.ok
        assert batch.failures[0].attempts == 1


class TestThreadPoolFailureHandling:
    def test_failures_attributed_exactly(self):
        jobs = [SimulationJob(trace=flat_trace("ok-1"),
                              config=teg_original()),
                SimulationJob(trace=subclass_trace(AlwaysRaises, "bad"),
                              config=teg_original()),
                SimulationJob(trace=flat_trace("ok-2"),
                              config=teg_loadbalance())]
        batch = run_batch(jobs, n_workers=3, prefer="thread",
                          retry_backoff_s=0.0)
        assert batch.metrics.executor == "thread"
        assert [r.trace_name for r in batch.results] == ["ok-1", "ok-2"]
        assert [f.trace_name for f in batch.failures] == ["bad"]

    def test_retry_in_thread_pool(self):
        FlakyTrace.counter = itertools.count()
        jobs = [SimulationJob(trace=subclass_trace(FlakyTrace, "flaky"),
                              config=teg_original()),
                SimulationJob(trace=flat_trace("ok"),
                              config=teg_original())]
        batch = run_batch(jobs, n_workers=2, prefer="thread",
                          max_retries=3, retry_backoff_s=0.0)
        assert batch.ok
        assert batch.get("TEG_Original", "flaky").metrics.retries == 2


@pytest.mark.slow
class TestProcessPoolFailureHandling:
    """The acceptance scenario: crash + hang + healthy jobs, one batch."""

    def test_crash_and_timeout_fail_exactly_the_affected_jobs(
            self, monkeypatch):
        monkeypatch.setenv(JOB_TIMEOUT_ENV_VAR, "2.0")
        jobs = [
            SimulationJob(trace=flat_trace("ok-1"),
                          config=teg_original()),
            SimulationJob(trace=subclass_trace(CrashingTrace, "crash"),
                          config=teg_original()),
            SimulationJob(trace=subclass_trace(HangingTrace, "hang"),
                          config=teg_original()),
            SimulationJob(trace=flat_trace("ok-2"),
                          config=teg_loadbalance()),
        ]
        batch = run_batch(jobs, n_workers=4, prefer="process")
        assert batch.metrics.executor == "process"
        assert not batch.ok
        assert sorted(r.trace_name for r in batch.results) == \
            ["ok-1", "ok-2"]
        assert {f.trace_name for f in batch.failures} == \
            {"crash", "hang"}
        by_name = {f.trace_name: f for f in batch.failures}
        assert not by_name["crash"].timed_out
        assert by_name["hang"].timed_out
        assert by_name["hang"].error_type == "TimeoutError"
        assert batch.metrics.timeouts == 1
        assert batch.metrics.n_failed == 2
        # Healthy partial results are the real thing, not placeholders.
        clean = run_batch([jobs[0]], n_workers=1)
        assert batch.get("TEG_Original", "ok-1").records == \
            clean.results[0].records

    def test_worker_crash_is_retried_before_failing(self):
        jobs = [SimulationJob(trace=subclass_trace(CrashingTrace,
                                                   "crash"),
                              config=teg_original()),
                SimulationJob(trace=flat_trace("ok"),
                              config=teg_original())]
        batch = run_batch(jobs, n_workers=2, prefer="process",
                          max_retries=1, retry_backoff_s=0.0)
        assert [f.trace_name for f in batch.failures] == ["crash"]
        assert batch.failures[0].attempts == 2
        assert batch.metrics.retries == 1
        assert [r.trace_name for r in batch.results] == ["ok"]


class TestFailedJobRecord:
    def test_key_and_error_round_trip(self):
        failed = FailedJob(scheme="S", trace_name="T",
                           error_type="ValueError", message="boom",
                           attempts=3, elapsed_s=1.5, timed_out=False)
        assert failed.key == ("S", "T")
        error = failed.to_error()
        assert isinstance(error, JobExecutionError)
        assert error.scheme == "S"
        assert error.attempts == 3
        assert "boom" in str(error)

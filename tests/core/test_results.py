"""Result container tests."""

import numpy as np
import pytest

from repro.core.results import (
    SchemeComparison,
    SimulationResult,
    StepRecord,
)
from repro.errors import ConfigurationError


def make_record(time_s=0.0, gen=4.0, cpu=29.0, util=0.25, viol=0):
    return StepRecord(
        time_s=time_s,
        mean_utilisation=util,
        max_utilisation=min(1.0, util * 2),
        generation_per_cpu_w=gen,
        cpu_power_per_cpu_w=cpu,
        mean_inlet_temp_c=52.0,
        mean_flow_l_per_h=150.0,
        max_cpu_temp_c=62.0,
        chiller_power_w=0.0,
        tower_power_w=100.0,
        pump_power_w=50.0,
        safety_violations=viol,
    )


def make_result(gens, scheme="TEG_Original", trace="common", cpu=29.0):
    result = SimulationResult(scheme=scheme, trace_name=trace,
                              n_servers=100, interval_s=300.0)
    for i, gen in enumerate(gens):
        result.append(make_record(time_s=i * 300.0, gen=gen, cpu=cpu))
    return result


class TestStepRecord:
    def test_pre(self):
        record = make_record(gen=4.0, cpu=32.0)
        assert record.pre == pytest.approx(0.125)

    def test_pre_zero_power(self):
        record = make_record(gen=4.0, cpu=0.0)
        assert record.pre == 0.0


class TestSimulationResult:
    def test_empty_result_rejected(self):
        result = SimulationResult("s", "t", 10, 300.0)
        with pytest.raises(ConfigurationError):
            _ = result.average_generation_w

    def test_headline_metrics(self):
        result = make_result([3.0, 4.0, 5.0])
        assert result.average_generation_w == pytest.approx(4.0)
        assert result.peak_generation_w == 5.0
        assert result.average_cpu_power_w == pytest.approx(29.0)

    def test_average_pre_is_energy_weighted(self):
        result = make_result([2.0, 6.0], cpu=29.0)
        assert result.average_pre == pytest.approx(8.0 / 58.0)

    def test_total_generation_kwh(self):
        # 2 steps x 4 W x 100 servers x 300 s.
        result = make_result([4.0, 4.0])
        expected = 8.0 * 100 * 300.0 / 3600.0 / 1000.0
        assert result.total_generation_kwh == pytest.approx(expected)

    def test_series_shapes(self):
        result = make_result([3.0, 4.0, 5.0])
        assert result.times_s.shape == (3,)
        assert result.generation_series_w.tolist() == [3.0, 4.0, 5.0]
        assert result.pre_series.shape == (3,)

    def test_violations_accumulate(self):
        result = SimulationResult("s", "t", 10, 300.0)
        result.append(make_record(viol=2))
        result.append(make_record(viol=3))
        assert result.total_safety_violations == 5

    def test_anti_correlation_sign(self):
        result = SimulationResult("s", "t", 10, 300.0)
        for i, (util, gen) in enumerate([(0.2, 5.0), (0.5, 4.0),
                                         (0.8, 3.0)]):
            result.append(make_record(time_s=i * 300.0, gen=gen,
                                      util=util))
        assert result.anti_correlation < -0.9

    def test_anti_correlation_degenerate(self):
        result = make_result([4.0, 4.0])
        assert result.anti_correlation == 0.0

    def test_summary_keys(self):
        summary = make_result([4.0]).summary()
        for key in ("scheme", "trace", "avg_generation_w", "pre",
                    "safety_violations"):
            assert key in summary


class TestSchemeComparison:
    def test_improvement(self):
        base = make_result([3.694], scheme="TEG_Original")
        opt = make_result([4.177], scheme="TEG_LoadBalance")
        comparison = SchemeComparison(baseline=base, optimised=opt)
        # The paper's 13.08 % headline.
        assert comparison.generation_improvement == pytest.approx(
            0.1308, abs=0.001)

    def test_mismatched_traces_rejected(self):
        base = make_result([3.0], trace="common")
        opt = make_result([4.0], trace="drastic")
        with pytest.raises(ConfigurationError):
            SchemeComparison(baseline=base, optimised=opt)

    def test_pre_improvement(self):
        base = make_result([3.0])
        opt = make_result([4.0])
        comparison = SchemeComparison(baseline=base, optimised=opt)
        assert comparison.pre_improvement == pytest.approx(1.0 / 29.0)

    def test_summary_structure(self):
        base = make_result([3.0])
        opt = make_result([4.0])
        summary = SchemeComparison(baseline=base, optimised=opt).summary()
        assert summary["baseline"]["scheme"] == "TEG_Original"
        assert summary["generation_improvement_pct"] == pytest.approx(
            33.33, abs=0.01)

"""Unit tests for the durable checkpoint store (repro.core.checkpoint).

Covers the durability contract in isolation: atomic write-then-rename,
content-keyed manifests, format versioning, corruption tolerance and
the wipe/refuse semantics of the ``resume`` flag.  End-to-end
kill-and-resume behaviour lives in ``test_checkpoint_resume.py``.
"""

import json
import pickle

import numpy as np
import pytest

from repro.core.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    RunKey,
    fingerprint,
    run_key,
    trace_digest,
)
from repro.core.config import SimulationConfig, teg_original
from repro.core.shard import plan_shards
from repro.errors import CheckpointError
from repro.workloads.trace import WorkloadTrace


def make_trace(seed=0, steps=24, servers=40, name="trace"):
    rng = np.random.default_rng(seed)
    return WorkloadTrace(rng.random((steps, servers)), 300.0, name=name)


def make_key(trace=None, config=None, specs=None):
    trace = trace if trace is not None else make_trace()
    config = config if config is not None else teg_original()
    return run_key(trace, config, specs=specs)


class TestDigests:
    def test_trace_digest_is_content_not_name(self):
        a = make_trace(seed=1, name="one")
        b = make_trace(seed=1, name="two")
        c = make_trace(seed=2, name="one")
        assert trace_digest(a) == trace_digest(b)
        assert trace_digest(a) != trace_digest(c)

    def test_trace_digest_sees_interval(self):
        matrix = np.random.default_rng(3).random((10, 8))
        a = WorkloadTrace(matrix, 300.0, name="t")
        b = WorkloadTrace(matrix.copy(), 600.0, name="t")
        assert trace_digest(a) != trace_digest(b)

    def test_fingerprint_stable_and_discriminating(self):
        config = teg_original()
        assert fingerprint(config) == fingerprint(teg_original())
        other = SimulationConfig(name="TEG_Original",
                                 safe_temp_c=59.5)
        assert fingerprint(config) != fingerprint(other)

    def test_run_key_depends_on_shard_plan(self):
        trace = make_trace()
        key_a = make_key(trace=trace,
                         specs=plan_shards(24, 40, 20, shard_steps=12))
        key_b = make_key(trace=trace,
                         specs=plan_shards(24, 40, 20, shard_steps=8))
        assert key_a != key_b
        assert key_a.short != key_b.short

    def test_run_key_accepts_precomputed_trace_hash(self):
        trace = make_trace()
        config = teg_original()
        direct = run_key(trace, config)
        cached = run_key(trace, config,
                         trace_hash=trace_digest(trace))
        assert direct == cached

    def test_malformed_key_dict_raises(self):
        with pytest.raises(CheckpointError):
            RunKey.from_dict({"scheme": "x"})


class TestStoreLifecycle:
    def test_fresh_directory_writes_manifest(self, tmp_path):
        key = make_key()
        store = CheckpointStore(tmp_path / "ckpt", key, n_shards=4)
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["schema"] == CHECKPOINT_SCHEMA
        assert manifest["version"] == CHECKPOINT_FORMAT_VERSION
        assert manifest["key"] == key.to_dict()
        assert store.completed() == []

    def test_key_mismatch_refuses_resume(self, tmp_path):
        directory = tmp_path / "ckpt"
        CheckpointStore(directory, make_key(trace=make_trace(seed=1)),
                        n_shards=4)
        with pytest.raises(CheckpointError, match="different run"):
            CheckpointStore(directory,
                            make_key(trace=make_trace(seed=2)),
                            n_shards=4)

    def test_key_mismatch_with_resume_false_wipes(self, tmp_path):
        directory = tmp_path / "ckpt"
        old = CheckpointStore(directory,
                              make_key(trace=make_trace(seed=1)),
                              n_shards=4)
        old.save_shard(0, {"fake": "outcome"})
        new_key = make_key(trace=make_trace(seed=2))
        store = CheckpointStore(directory, new_key, n_shards=4,
                                resume=False)
        assert store.completed() == []
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["key"] == new_key.to_dict()

    def test_matching_key_resume_false_starts_over(self, tmp_path):
        directory = tmp_path / "ckpt"
        key = make_key()
        CheckpointStore(directory, key, n_shards=4).save_shard(2, "x")
        store = CheckpointStore(directory, key, n_shards=4,
                                resume=False)
        assert store.completed() == []

    def test_newer_format_version_refused(self, tmp_path):
        directory = tmp_path / "ckpt"
        key = make_key()
        store = CheckpointStore(directory, key, n_shards=1)
        manifest = json.loads(store.manifest_path.read_text())
        manifest["version"] = CHECKPOINT_FORMAT_VERSION + 1
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="newer"):
            CheckpointStore(directory, key, n_shards=1)

    def test_alien_schema_refused(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / "checkpoint.json").write_text(
            json.dumps({"schema": "someone/else", "version": 1}))
        with pytest.raises(CheckpointError, match="schema"):
            CheckpointStore(directory, make_key(), n_shards=1)

    def test_garbage_manifest_refused(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / "checkpoint.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="JSON"):
            CheckpointStore(directory, make_key(), n_shards=1)

    def test_stale_temp_files_swept(self, tmp_path):
        directory = tmp_path / "ckpt"
        key = make_key()
        CheckpointStore(directory, key, n_shards=2)
        leftover = directory / "shards" / "shard-00001.pkl.tmp-999"
        leftover.write_bytes(b"half-written")
        store = CheckpointStore(directory, key, n_shards=2)
        assert not leftover.exists()
        assert store.completed() == []


class TestShardRoundTrip:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", make_key(),
                                n_shards=4)
        payload = {"anything": ["picklable", 1, 2.5]}
        store.save_shard(1, payload, cache_store={"k": "v"})
        assert store.completed() == [1]
        saved = store.load_shard(1)
        assert saved["outcome"] == payload
        assert saved["cache_store"] == {"k": "v"}
        assert store.loaded == {1}
        assert store.saved == {1}

    def test_missing_shard_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", make_key(),
                                n_shards=4)
        assert store.load_shard(3) is None
        assert store.loaded == set()

    def test_corrupt_shard_discarded_and_recomputable(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", make_key(),
                                n_shards=4)
        store.save_shard(0, "good")
        path = store._shard_path(0)
        path.write_bytes(path.read_bytes()[:10])  # torn write
        assert store.load_shard(0) is None
        assert not path.exists()

    def test_wrong_payload_shape_discarded(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", make_key(),
                                n_shards=4)
        store._shard_path(2).write_bytes(
            pickle.dumps(["not", "a", "dict"]))
        assert store.load_shard(2) is None

    def test_out_of_range_files_ignored_by_completed(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", make_key(),
                                n_shards=2)
        store.save_shard(0, "ok")
        (store._shards_dir / "shard-00099.pkl").write_bytes(b"x")
        (store._shards_dir / "shard-junk.pkl").write_bytes(b"x")
        assert store.completed() == [0]


class TestWholeJobResults:
    def test_result_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", make_key(),
                                n_shards=0, kind="whole")
        assert store.load_result() is None
        store.save_result({"pretend": "result"})
        assert store.load_result() == {"pretend": "result"}

    def test_corrupt_result_discarded(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", make_key(),
                                n_shards=0, kind="whole")
        store.save_result({"pretend": "result"})
        (store.directory / "result.pkl").write_bytes(b"\x80garbage")
        assert store.load_result() is None
        assert not (store.directory / "result.pkl").exists()

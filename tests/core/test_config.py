"""Simulation configuration tests."""

import pytest

from repro.control.cooling_policy import (
    AnalyticPolicy,
    LookupSpacePolicy,
    StaticPolicy,
)
from repro.control.scheduling import (
    IdealBalancer,
    NoScheduler,
    ThresholdBalancer,
)
from repro.core.config import (
    SimulationConfig,
    teg_loadbalance,
    teg_original,
)
from repro.errors import ConfigurationError
from repro.thermal.cpu_model import CpuThermalModel


class TestValidation:
    def test_bad_circulation_size(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(circulation_size=0)

    def test_bad_scheduler_name(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(scheduler="round-robin")

    def test_bad_policy_name(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(policy="oracle")

    def test_bad_interval(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(control_interval_s=0.0)

    def test_bad_inlet_band(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(inlet_min_c=60.0, inlet_max_c=50.0)

    def test_empty_flows(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(flow_candidates_l_per_h=())


class TestSchemeFactories:
    def test_teg_original(self):
        config = teg_original()
        assert config.name == "TEG_Original"
        assert config.scheduler == "none"
        assert config.policy == "lookup"

    def test_teg_loadbalance(self):
        config = teg_loadbalance()
        assert config.name == "TEG_LoadBalance"
        assert config.scheduler == "ideal"

    def test_overrides(self):
        config = teg_original(circulation_size=100, inlet_max_c=52.0)
        assert config.circulation_size == 100
        assert config.inlet_max_c == 52.0
        assert config.name == "TEG_Original"

    def test_frozen(self):
        config = teg_original()
        with pytest.raises(AttributeError):
            config.circulation_size = 5


class TestComponentFactories:
    def test_scheduler_mapping(self):
        assert isinstance(
            SimulationConfig(scheduler="none").build_scheduler(),
            NoScheduler)
        assert isinstance(
            SimulationConfig(scheduler="ideal").build_scheduler(),
            IdealBalancer)
        threshold = SimulationConfig(
            scheduler="threshold", threshold_cap=0.4).build_scheduler()
        assert isinstance(threshold, ThresholdBalancer)
        assert threshold.cap == 0.4

    def test_policy_mapping(self):
        model = CpuThermalModel()
        assert isinstance(
            SimulationConfig(policy="static").build_policy(model),
            StaticPolicy)
        assert isinstance(
            SimulationConfig(policy="analytic").build_policy(model),
            AnalyticPolicy)
        assert isinstance(
            SimulationConfig(policy="lookup").build_policy(model),
            LookupSpacePolicy)

    def test_policy_inherits_scheduler_aggregation(self):
        model = CpuThermalModel()
        original = teg_original().build_policy(model)
        balanced = teg_loadbalance().build_policy(model)
        assert original.aggregation == "max"
        assert balanced.aggregation == "avg"

    def test_lookup_space_respects_bounds(self, lookup_space):
        model = CpuThermalModel()
        config = SimulationConfig(policy="lookup", inlet_max_c=50.0)
        policy = config.build_policy(model)
        assert float(policy.space.inlet_grid[-1]) == pytest.approx(50.0)

    def test_shared_space_reused(self, lookup_space):
        model = CpuThermalModel()
        policy = SimulationConfig(policy="lookup").build_policy(
            model, space=lookup_space)
        assert policy.space is lookup_space

"""Self-healing shard execution: retries, stragglers, janitor, audit.

Covers the failure-containment half of the robustness work:

* shard failures surface as :class:`ShardExecutionError` carrying the
  tile's coordinates, attempt number and worker pid (never a bare
  exception), and survive pickling across process boundaries;
* transient shard failures are retried with backoff and recorded as
  ``shard.retry`` telemetry events; exhausted shards fail the job with
  the structured error;
* shards exceeding the straggler deadline are speculatively
  re-dispatched (first completion wins) without changing results;
* the shared-memory janitor reaps segments orphaned by dead processes
  and releases live segments on SIGTERM;
* the post-merge auditor refuses structurally corrupt merged results.
"""

import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

import repro.core.shard as shard_mod
from repro.core.config import teg_original
from repro.core.engine import (
    SEGMENT_PREFIX,
    SHARD_STRAGGLER_ENV_VAR,
    SimulationJob,
    reap_orphaned_segments,
    resolve_shard_straggler,
    run_batch,
)
from repro.core.shard import (
    audit_merged_result,
    plan_shards,
    run_shard,
    simulate_sharded,
)
from repro.core.simulator import DatacenterSimulator
from repro.errors import (
    ConfigurationError,
    ResultIntegrityError,
    ShardExecutionError,
)
from repro.workloads.trace import WorkloadTrace

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def make_trace(steps=48, servers=40, seed=7, name="fleet"):
    rng = np.random.default_rng(seed)
    return WorkloadTrace(rng.random((steps, servers)), 300.0, name=name)


def assert_identical(a, b):
    assert a.records == b.records
    assert a.violations == b.violations
    assert a.average_generation_w == b.average_generation_w


class TestShardErrorWrapping:
    """run_shard never lets a failure surface as a bare exception."""

    def failing_call(self):
        trace = make_trace(steps=12)
        spec = plan_shards(12, 40, 20, shard_servers=20,
                           shard_steps=12)[1]
        tile = trace.window(spec.step_start, spec.step_stop,
                            spec.server_start, spec.server_stop)
        # A teg_module with no TEG interface at all: the kernel blows
        # up with an AttributeError deep inside phase 1.
        return tile, spec, object()

    def test_wraps_with_coordinates_and_pid(self):
        tile, spec, broken = self.failing_call()
        with pytest.raises(ShardExecutionError) as excinfo:
            run_shard(tile, spec, teg_original(), teg_module=broken)
        err = excinfo.value
        assert err.shard_index == spec.index
        assert err.step_start == spec.step_start
        assert err.step_stop == spec.step_stop
        assert err.server_start == spec.server_start
        assert err.server_stop == spec.server_stop
        assert err.worker_pid == os.getpid()
        assert err.__cause__ is not None
        assert type(err.__cause__).__name__ in str(err)

    def test_survives_pickling(self):
        tile, spec, broken = self.failing_call()
        with pytest.raises(ShardExecutionError) as excinfo:
            run_shard(tile, spec, teg_original(), teg_module=broken)
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert isinstance(clone, ShardExecutionError)
        assert clone.context() == excinfo.value.context()
        assert str(clone) == str(excinfo.value)

    def test_context_is_flat_and_complete(self):
        err = ShardExecutionError(
            "boom", shard_index=3, step_start=0, step_stop=8,
            server_start=20, server_stop=40, attempt=2, worker_pid=123)
        assert err.context() == {
            "shard_index": 3, "step_start": 0, "step_stop": 8,
            "server_start": 20, "server_stop": 40, "attempt": 2,
            "worker_pid": 123}

    def test_configuration_errors_pass_through_unwrapped(self):
        trace = make_trace(steps=12)
        spec = plan_shards(12, 40, 20, shard_steps=6)[0]
        wrong_tile = trace.window(0, 3, 0, 40)  # too few steps
        with pytest.raises(ConfigurationError):
            run_shard(wrong_tile, spec, teg_original())


class FlakyRunShard:
    """Delegate to the real run_shard, failing the first N calls."""

    def __init__(self, failures, error=ValueError("transient")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return run_shard(*args, **kwargs)


class TestShardRetries:
    SHARD_KW = dict(shard=True, shard_steps=12, shard_servers=20)

    def test_transient_failure_retried_and_bit_identical(
            self, monkeypatch):
        trace = make_trace()
        golden = run_batch([SimulationJob(trace, teg_original())],
                           n_workers=2, prefer="thread", **self.SHARD_KW)
        flaky = FlakyRunShard(failures=1)
        monkeypatch.setattr(shard_mod, "run_shard", flaky)
        batch = run_batch([SimulationJob(trace, teg_original())],
                          n_workers=2, prefer="thread", max_retries=2,
                          retry_backoff_s=0.0, telemetry=True,
                          **self.SHARD_KW)
        assert batch.ok
        assert flaky.calls > 8  # one failed attempt was re-run
        assert_identical(batch.results[0], golden.results[0])
        kinds = {e.kind for e in batch.telemetry.events}
        assert "shard.retry" in kinds

    def test_exhausted_retries_fail_with_structured_error(
            self, monkeypatch):
        trace = make_trace()
        always = FlakyRunShard(failures=10 ** 9,
                               error=RuntimeError("permanent"))
        monkeypatch.setattr(shard_mod, "run_shard", always)
        batch = run_batch([SimulationJob(trace, teg_original())],
                          n_workers=2, prefer="thread", max_retries=1,
                          retry_backoff_s=0.0, telemetry=True,
                          **self.SHARD_KW)
        assert not batch.ok
        assert batch.failures[0].error_type in ("RuntimeError",
                                                "ShardExecutionError")
        kinds = {e.kind for e in batch.telemetry.events}
        assert "shard.failed" in kinds


class SlowShardZero:
    """Delegate to run_shard, stalling every attempt at shard 0."""

    def __call__(self, tile, spec, *args, **kwargs):
        if spec.index == 0:
            time.sleep(0.2)
        return run_shard(tile, spec, *args, **kwargs)


class TestStragglerSpeculation:
    def test_deadline_resolution(self, monkeypatch):
        assert resolve_shard_straggler(None) is None
        assert resolve_shard_straggler(2.5) == 2.5
        monkeypatch.setenv(SHARD_STRAGGLER_ENV_VAR, "1.5")
        assert resolve_shard_straggler(None) == 1.5
        assert resolve_shard_straggler(3.0) == 3.0  # explicit wins
        monkeypatch.setenv(SHARD_STRAGGLER_ENV_VAR, "nope")
        with pytest.raises(ConfigurationError):
            resolve_shard_straggler(None)
        monkeypatch.setenv(SHARD_STRAGGLER_ENV_VAR, "-1")
        with pytest.raises(ConfigurationError):
            resolve_shard_straggler(None)

    def test_straggler_speculation_preserves_results(self, monkeypatch):
        trace = make_trace()
        kwargs = dict(n_workers=2, prefer="thread", shard=True,
                      shard_steps=12, shard_servers=20)
        golden = run_batch([SimulationJob(trace, teg_original())],
                           **kwargs)
        monkeypatch.setattr(shard_mod, "run_shard", SlowShardZero())
        batch = run_batch([SimulationJob(trace, teg_original())],
                          shard_straggler_s=0.05, telemetry=True,
                          **kwargs)
        assert batch.ok
        assert_identical(batch.results[0], golden.results[0])
        kinds = {e.kind for e in batch.telemetry.events}
        assert "shard.straggler" in kinds


class TestSegmentReaper:
    def test_reaps_only_dead_owner_segments(self, tmp_path):
        dead = subprocess.Popen(["/bin/true"])
        dead.wait()
        orphan = tmp_path / f"{SEGMENT_PREFIX}{dead.pid}-deadbeef"
        orphan.write_bytes(b"x")
        mine = tmp_path / f"{SEGMENT_PREFIX}{os.getpid()}-cafef00d"
        mine.write_bytes(b"x")
        odd = tmp_path / f"{SEGMENT_PREFIX}not-a-pid"
        odd.write_bytes(b"x")
        unrelated = tmp_path / "some-other-file"
        unrelated.write_bytes(b"x")

        reaped = reap_orphaned_segments(tmp_path)
        assert reaped == [orphan.name]
        assert not orphan.exists()
        assert mine.exists()
        assert odd.exists()
        assert unrelated.exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert reap_orphaned_segments(tmp_path / "nope") == []


@pytest.mark.skipif(not Path("/dev/shm").is_dir(),
                    reason="no POSIX shared memory mount")
class TestSigtermJanitor:
    DRIVER = textwrap.dedent("""\
        import sys, time
        import numpy as np
        from repro.core.engine import BatchSimulationEngine
        from repro.workloads.trace import WorkloadTrace

        engine = BatchSimulationEngine(n_workers=1)
        trace = WorkloadTrace(
            np.random.default_rng(0).random((10, 40)), 300.0, name="t")
        ref = engine._shared_traces.ref_for(trace)
        print(ref.shm_name, flush=True)
        time.sleep(60)
    """)

    def test_sigterm_unlinks_live_segments(self, tmp_path):
        driver = tmp_path / "driver.py"
        driver.write_text(self.DRIVER)
        env = {"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"}
        proc = subprocess.Popen([sys.executable, str(driver)],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, env=env)
        try:
            name = proc.stdout.readline().decode().strip()
            assert name, proc.stderr.read().decode(errors="replace")
            segment = Path("/dev/shm") / name
            assert segment.exists()
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
            assert not segment.exists()
        finally:
            if proc.poll() is None:  # pragma: no cover
                proc.kill()
                proc.wait()


class TestMergeAudit:
    """audit_merged_result refuses structurally corrupt results."""

    def loop_result(self):
        trace = make_trace(steps=12, servers=40)
        config = teg_original()
        result = DatacenterSimulator(trace, config).run()
        return trace, config, result

    def test_clean_result_passes(self):
        trace, config, result = self.loop_result()
        audit_merged_result(trace, config, result)  # must not raise

    def test_lost_window_detected(self):
        trace, config, result = self.loop_result()
        result.records.pop()
        with pytest.raises(ResultIntegrityError) as excinfo:
            audit_merged_result(trace, config, result)
        assert excinfo.value.issues
        assert any("records" in issue for issue in excinfo.value.issues)

    def test_shuffled_windows_detected(self):
        trace, config, result = self.loop_result()
        result.records[0], result.records[-1] = (result.records[-1],
                                                 result.records[0])
        with pytest.raises(ResultIntegrityError):
            audit_merged_result(trace, config, result)

    def test_merge_runs_audit_by_default(self):
        """simulate_sharded output has been through the auditor."""
        trace = make_trace(steps=24)
        result = simulate_sharded(trace, teg_original(), shard_steps=12,
                                  shard_servers=20)
        audit_merged_result(trace, teg_original(), result)

"""Facility-level PUE/ERE accounting tests."""

import pytest

from repro.core.facility import FacilityModel, FacilityReport
from repro.core.results import SimulationResult, StepRecord
from repro.errors import PhysicalRangeError


def make_result(gen=4.0, cpu=30.0, chiller=0.0, tower=50.0, pump=100.0,
                steps=4, servers=100):
    result = SimulationResult(scheme="s", trace_name="t",
                              n_servers=servers, interval_s=900.0)
    for i in range(steps):
        result.append(StepRecord(
            time_s=i * 900.0, mean_utilisation=0.25, max_utilisation=0.5,
            generation_per_cpu_w=gen, cpu_power_per_cpu_w=cpu,
            mean_inlet_temp_c=52.0, mean_flow_l_per_h=100.0,
            max_cpu_temp_c=60.0, chiller_power_w=chiller,
            tower_power_w=tower, pump_power_w=pump, safety_violations=0))
    return result


class TestValidation:
    def test_bad_overhead_rejected(self):
        with pytest.raises(PhysicalRangeError):
            FacilityModel(server_overhead_factor=0.5)

    def test_bad_loss_rejected(self):
        with pytest.raises(PhysicalRangeError):
            FacilityModel(power_delivery_loss=1.0)

    def test_bad_lighting_rejected(self):
        with pytest.raises(PhysicalRangeError):
            FacilityModel(lighting_fraction=-0.1)


class TestAssessment:
    def test_it_energy(self):
        report = FacilityModel(server_overhead_factor=1.6).assess(
            make_result())
        # 100 servers * 30 W * 1.6 = 4.8 kW for 4 * 0.25 h = 4.8 kWh.
        assert report.it_kwh == pytest.approx(4.8)

    def test_reuse_energy(self):
        report = FacilityModel().assess(make_result())
        # 100 * 4 W over 1 h = 0.4 kWh.
        assert report.reuse_kwh == pytest.approx(0.4)

    def test_pue_above_one(self):
        report = FacilityModel().assess(make_result())
        assert report.pue > 1.0

    def test_ere_below_pue(self):
        report = FacilityModel().assess(make_result())
        assert report.ere < report.pue
        assert report.ere_gain == pytest.approx(report.pue - report.ere)

    def test_no_generation_means_ere_equals_pue(self):
        report = FacilityModel().assess(make_result(gen=0.0))
        assert report.ere == pytest.approx(report.pue)

    def test_chiller_raises_pue(self):
        free = FacilityModel().assess(make_result(chiller=0.0))
        chilled = FacilityModel().assess(make_result(chiller=3000.0))
        assert chilled.pue > free.pue

    def test_end_to_end_warm_water_pue(self, tiny_traces):
        # A warm-water H2P run should land in a plausible PUE regime and
        # show a measurable ERE gain.
        import repro

        result = repro.H2PSystem().evaluate(
            tiny_traces["common"], repro.teg_loadbalance())
        report = FacilityModel().assess(result)
        assert 1.0 < report.pue < 1.6
        assert report.ere_gain > 0.03


class TestReportArithmetic:
    def test_report_is_frozen(self):
        report = FacilityReport(it_kwh=10.0, cooling_kwh=1.0,
                                power_delivery_kwh=0.5, lighting_kwh=0.1,
                                reuse_kwh=0.4)
        with pytest.raises(AttributeError):
            report.it_kwh = 5.0

    def test_hand_computed_metrics(self):
        report = FacilityReport(it_kwh=100.0, cooling_kwh=10.0,
                                power_delivery_kwh=5.0, lighting_kwh=1.0,
                                reuse_kwh=16.0)
        assert report.pue == pytest.approx(1.16)
        assert report.ere == pytest.approx(1.00)

"""Kill-and-resume acceptance: checkpointed runs survive SIGKILL.

The tentpole guarantee under test: a run interrupted at *any* point —
including a hard SIGKILL that gives no cleanup opportunity — resumes
from its checkpoint directory and produces results bit-identical to an
uninterrupted run, for kernel shards and sequential fault windows
alike.  The SIGKILL test drives a real subprocess; the hypothesis
property randomises the interruption point by deleting arbitrary
subsets of completed-shard files.
"""

import shutil
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import teg_loadbalance, teg_original
from repro.core.engine import SimulationJob, run_batch
from repro.core.shard import simulate_sharded
from repro.faults import FaultSchedule, FaultSpec
from repro.workloads.trace import WorkloadTrace

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

#: 48 steps x 40 servers at (12, 20) tiles -> a 4x2 = 8-shard grid.
STEPS, SERVERS, SEED = 48, 40, 7
SHARD_KW = dict(shard_steps=12, shard_servers=20)
N_SHARDS = 8


def make_trace(steps=STEPS, servers=SERVERS, seed=SEED, name="fleet"):
    rng = np.random.default_rng(seed)
    return WorkloadTrace(rng.random((steps, servers)), 300.0, name=name)


def assert_identical(resumed, golden):
    """Records, violations and headline aggregates must match exactly."""
    assert resumed.records == golden.records
    assert resumed.violations == golden.violations
    assert resumed.scheme == golden.scheme
    assert resumed.trace_name == golden.trace_name
    assert resumed.average_generation_w == golden.average_generation_w


class TestSigkillResume:
    """A hard-killed run resumes bit-identically from its checkpoint."""

    #: Driver run in a real subprocess: same trace/config as the parent
    #: (content hashes must agree across interpreters), with run_shard
    #: slowed so the kill window between shard completions is wide.
    DRIVER = textwrap.dedent("""\
        import sys, time
        import numpy as np
        import repro.core.shard as shard_mod
        from repro.core.config import teg_original
        from repro.workloads.trace import WorkloadTrace

        real_run_shard = shard_mod.run_shard
        def slow_run_shard(*args, **kwargs):
            outcome = real_run_shard(*args, **kwargs)
            time.sleep(0.25)
            return outcome
        shard_mod.run_shard = slow_run_shard

        rng = np.random.default_rng({seed})
        trace = WorkloadTrace(rng.random(({steps}, {servers})), 300.0,
                              name="fleet")
        shard_mod.simulate_sharded(trace, teg_original(),
                                   shard_steps={shard_steps},
                                   shard_servers={shard_servers},
                                   checkpoint=sys.argv[1])
        print("FINISHED", flush=True)
    """)

    def test_sigkill_mid_run_then_resume_is_bit_identical(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        driver = tmp_path / "driver.py"
        driver.write_text(self.DRIVER.format(
            seed=SEED, steps=STEPS, servers=SERVERS,
            shard_steps=SHARD_KW["shard_steps"],
            shard_servers=SHARD_KW["shard_servers"]))
        env = {"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"}
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(ckpt)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
        try:
            shards_dir = ckpt / "shards"
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                done = (sorted(shards_dir.glob("shard-*.pkl"))
                        if shards_dir.is_dir() else [])
                if len(done) >= 2:
                    break
                if proc.poll() is not None:  # pragma: no cover
                    out, err = proc.communicate()
                    pytest.fail("driver exited before the kill window: "
                                f"{err.decode(errors='replace')}")
                time.sleep(0.005)
            else:  # pragma: no cover - machine-speed dependent
                pytest.fail("no shard completed within 60 s")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover
                proc.kill()
                proc.wait()
        assert proc.returncode == -signal.SIGKILL
        survivors = len(list((ckpt / "shards").glob("shard-*.pkl")))
        assert 2 <= survivors < N_SHARDS

        trace = make_trace()
        golden = simulate_sharded(trace, teg_original(), **SHARD_KW)
        resumed = simulate_sharded(trace, teg_original(), **SHARD_KW,
                                   checkpoint=ckpt)
        assert_identical(resumed, golden)
        # Every shard the killed run persisted was reused, not redone.
        assert resumed.metrics.shards_resumed == survivors


@pytest.fixture(scope="module")
def kernel_template(tmp_path_factory):
    """A fully populated checkpoint plus the golden result it encodes."""
    template = tmp_path_factory.mktemp("ckpt-template")
    trace = make_trace()
    golden = simulate_sharded(trace, teg_original(), **SHARD_KW,
                              checkpoint=template)
    assert len(list((template / "shards").glob("shard-*.pkl"))) == N_SHARDS
    return template, golden


class TestInterruptionPointProperty:
    @settings(max_examples=12, deadline=None)
    @given(dropped=st.sets(st.integers(min_value=0,
                                       max_value=N_SHARDS - 1)))
    def test_resume_from_any_surviving_subset(self, kernel_template,
                                              dropped):
        """Any subset of persisted shards resumes bit-identically.

        Deleting shard files simulates a crash at an arbitrary point
        (shards persist independently and atomically, so the on-disk
        state after any interruption is exactly "some subset made it").
        """
        template, golden = kernel_template
        workdir = tempfile.mkdtemp(prefix="resume-prop-")
        try:
            ckpt = Path(workdir) / "ckpt"
            shutil.copytree(template, ckpt)
            for index in dropped:
                (ckpt / "shards" / f"shard-{index:05d}.pkl").unlink()
            resumed = simulate_sharded(make_trace(), teg_original(),
                                       **SHARD_KW, checkpoint=ckpt)
            assert_identical(resumed, golden)
            assert (resumed.metrics.shards_resumed
                    == N_SHARDS - len(dropped))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)


class TestFaultWindowResume:
    """Sequential fault windows resume through cache/policy snapshots."""

    def run(self, trace, faults, **kwargs):
        return simulate_sharded(trace, teg_original(), faults=faults,
                                shard_steps=20, **kwargs)

    def test_missing_middle_window_recomputed_bit_identically(
            self, tmp_path):
        trace = make_trace(steps=60, name="faulty")
        faults = FaultSchedule(specs=(
            FaultSpec(kind="pump_derate", start_s=3000.0,
                      duration_s=6000.0, magnitude=0.3),))
        golden = self.run(trace, faults)
        ckpt = tmp_path / "ckpt"
        first = self.run(trace, faults, checkpoint=ckpt)
        assert_identical(first, golden)
        windows = sorted((ckpt / "shards").glob("shard-*.pkl"))
        assert len(windows) == 3

        # A hole in the middle: window 1 must be recomputed from the
        # cache snapshot and policy instance window 0 persisted, while
        # windows 0 and 2 load straight from disk.
        (ckpt / "shards" / "shard-00001.pkl").unlink()
        resumed = self.run(trace, faults, checkpoint=ckpt)
        assert_identical(resumed, golden)
        assert resumed.metrics.shards_resumed == 2

    def test_fully_complete_checkpoint_replays_all_windows(
            self, tmp_path):
        trace = make_trace(steps=60, name="faulty")
        faults = FaultSchedule(specs=(
            FaultSpec(kind="pump_derate", start_s=3000.0,
                      duration_s=6000.0, magnitude=0.3),))
        ckpt = tmp_path / "ckpt"
        golden = self.run(trace, faults, checkpoint=ckpt)
        resumed = self.run(trace, faults, checkpoint=ckpt)
        assert_identical(resumed, golden)
        assert resumed.metrics.shards_resumed == 3


class TestEngineBatchResume:
    """run_batch(checkpoint=...) resumes shards and whole jobs."""

    def jobs(self):
        trace = make_trace()
        return [SimulationJob(trace, teg_original()),
                SimulationJob(trace, teg_loadbalance())]

    def test_sharded_batch_resumes_every_shard(self, tmp_path):
        kwargs = dict(n_workers=2, prefer="thread", shard=True,
                      **SHARD_KW)
        golden = run_batch(self.jobs(), **kwargs)
        ckpt = tmp_path / "ckpt"
        first = run_batch(self.jobs(), **kwargs, checkpoint=ckpt)
        assert first.ok and first.metrics.shards_resumed == 0
        again = run_batch(self.jobs(), **kwargs, checkpoint=ckpt)
        assert again.ok
        assert again.metrics.shards_resumed == 2 * N_SHARDS
        for job in self.jobs():
            assert_identical(again.get(*job.key), golden.get(*job.key))

    def test_whole_job_results_resume(self, tmp_path):
        jobs = [SimulationJob(make_trace(), teg_original())]
        kwargs = dict(n_workers=1, shard=False)
        golden = run_batch(jobs, **kwargs)
        ckpt = tmp_path / "ckpt"
        run_batch(jobs, **kwargs, checkpoint=ckpt)
        again = run_batch(jobs, **kwargs, checkpoint=ckpt)
        assert again.ok
        assert again.metrics.jobs_resumed == 1
        assert_identical(again.results[0], golden.results[0])

    def test_distinct_jobs_get_distinct_stores(self, tmp_path):
        """Two schemes in one root never collide on a shard directory."""
        ckpt = tmp_path / "ckpt"
        run_batch(self.jobs(), n_workers=1, shard=True, **SHARD_KW,
                  checkpoint=ckpt)
        subdirs = [p for p in ckpt.iterdir() if p.is_dir()]
        assert len(subdirs) == 2
        names = {p.name for p in subdirs}
        assert any("teg-original" in n.lower().replace("_", "-")
                   or "TEG_Original" in n for n in names)

"""Unit tests for the fleet-scale sharding layer (repro.core.shard).

Planner geometry, knob/environment validation (coordinator-side, the
satellite fix of the sharding PR), decision priming, and the
payload-size independence the zero-copy dispatch promises.  Numerical
parity between sharded and unsharded runs lives in
``tests/core/test_shard_parity.py``.
"""

import pickle

import pytest

from repro.core.config import SimulationConfig, teg_original
from repro.core.engine import (
    BatchSimulationEngine,
    SharedTraceRef,
    SimulationJob,
)
from repro.core.shard import (
    AUTO_SHARD_MIN_CELLS,
    SHARD_SERVERS_ENV_VAR,
    SHARD_STEPS_ENV_VAR,
    ShardSpec,
    _ShardPayload,
    clone_cache,
    plan_shards,
    prime_decisions,
    resolve_shard_size,
    run_shard,
    simulate_sharded,
)
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule, FaultSpec
from repro.workloads.synthetic import drastic_trace


def small_trace(n_servers=47, steps=24, seed=7):
    return drastic_trace(n_servers=n_servers, duration_s=steps * 300.0,
                         interval_s=300.0, seed=seed)


class TestPlanShards:
    """Tiling geometry: every cell exactly once, circulation-aligned."""

    def covers_exactly_once(self, specs, n_steps, n_servers):
        seen = set()
        for spec in specs:
            for step in range(spec.step_start, spec.step_stop):
                for server in range(spec.server_start, spec.server_stop):
                    assert (step, server) not in seen
                    seen.add((step, server))
        assert len(seen) == n_steps * n_servers

    def test_single_tile_when_unsplit(self):
        specs = plan_shards(100, 60, 20)
        assert len(specs) == 1
        spec = specs[0]
        assert (spec.step_start, spec.step_stop) == (0, 100)
        assert (spec.server_start, spec.server_stop) == (0, 60)
        assert (spec.circ_start, spec.circ_stop) == (0, 3)

    def test_covers_plane_exactly_once(self):
        specs = plan_shards(10, 47, 20, shard_servers=20, shard_steps=3)
        self.covers_exactly_once(specs, 10, 47)

    def test_server_boundaries_on_circulations(self):
        specs = plan_shards(10, 100, 20, shard_servers=50)
        for spec in specs:
            assert spec.server_start % 20 == 0
            assert spec.server_start == spec.circ_start * 20

    def test_ragged_trailing_circulation(self):
        # 47 servers at circulation 20 -> groups of 20, 20, 7.
        specs = plan_shards(5, 47, 20, shard_servers=20)
        widths = sorted(spec.n_servers for spec in specs)
        assert widths == [7, 20, 20]
        last = max(specs, key=lambda s: s.server_start)
        assert (last.server_start, last.server_stop) == (40, 47)

    def test_ragged_time_window(self):
        specs = plan_shards(10, 20, 20, shard_steps=4)
        lengths = [spec.n_steps for spec in specs]
        assert lengths == [4, 4, 2]

    def test_width_below_circulation_clamps_to_one_circ(self):
        # A 1-server target still ships whole circulations.
        specs = plan_shards(5, 40, 20, shard_servers=1)
        assert all(spec.n_circs == 1 for spec in specs)
        self.covers_exactly_once(specs, 5, 40)

    def test_width_above_trace_clamps(self):
        specs = plan_shards(5, 40, 20, shard_servers=10_000)
        assert len(specs) == 1

    def test_order_is_server_major_time_minor(self):
        specs = plan_shards(6, 40, 20, shard_servers=20, shard_steps=3)
        keys = [(spec.server_start, spec.step_start) for spec in specs]
        assert keys == sorted(keys)
        assert [spec.index for spec in specs] == list(range(len(specs)))

    @pytest.mark.parametrize("kwargs", [
        dict(n_steps=0, n_servers=10, circulation_size=5),
        dict(n_steps=10, n_servers=0, circulation_size=5),
        dict(n_steps=10, n_servers=10, circulation_size=0),
        dict(n_steps=10, n_servers=10, circulation_size=5,
             shard_servers=-1),
        dict(n_steps=10, n_servers=10, circulation_size=5, shard_steps=0),
    ])
    def test_invalid_inputs_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            plan_shards(**kwargs)


class TestResolveShardSize:
    """Explicit argument > environment > None; malformed values raise."""

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(SHARD_SERVERS_ENV_VAR, "100")
        assert resolve_shard_size(7, SHARD_SERVERS_ENV_VAR) == 7

    def test_env_used_when_unset(self, monkeypatch):
        monkeypatch.setenv(SHARD_STEPS_ENV_VAR, "250")
        assert resolve_shard_size(None, SHARD_STEPS_ENV_VAR) == 250

    def test_unset_returns_none(self, monkeypatch):
        monkeypatch.delenv(SHARD_STEPS_ENV_VAR, raising=False)
        assert resolve_shard_size(None, SHARD_STEPS_ENV_VAR) is None

    @pytest.mark.parametrize("value", ["abc", "-3", "0", "2.5", ""])
    def test_malformed_env_raises_naming_variable(self, monkeypatch,
                                                  value):
        monkeypatch.setenv(SHARD_SERVERS_ENV_VAR, value)
        with pytest.raises(ConfigurationError, match=SHARD_SERVERS_ENV_VAR):
            resolve_shard_size(None, SHARD_SERVERS_ENV_VAR)

    @pytest.mark.parametrize("value", [0, -4])
    def test_non_positive_explicit_raises(self, value):
        with pytest.raises(ConfigurationError):
            resolve_shard_size(value, SHARD_SERVERS_ENV_VAR)


class TestEngineKnobValidation:
    """The engine rejects bad knobs before anything reaches a worker."""

    @pytest.mark.parametrize("kwargs", [
        dict(shard_servers=0),
        dict(shard_servers=-5),
        dict(shard_steps=0),
        dict(shard_steps=-1),
    ])
    def test_constructor_rejects_non_positive(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchSimulationEngine(**kwargs)

    def test_env_malformed_fails_run_not_worker(self, monkeypatch):
        monkeypatch.setenv(SHARD_STEPS_ENV_VAR, "soon")
        engine = BatchSimulationEngine(n_workers=1, prefer="serial")
        job = SimulationJob(trace=small_trace(), config=teg_original())
        try:
            with pytest.raises(ConfigurationError,
                               match=SHARD_STEPS_ENV_VAR):
                engine.run([job])
        finally:
            engine.close()

    def test_knob_exceeding_trace_dimensions_raises(self):
        trace = small_trace(n_servers=47, steps=24)
        engine = BatchSimulationEngine(n_workers=1, prefer="serial",
                                       shard=True, shard_servers=48)
        job = SimulationJob(trace=trace, config=teg_original())
        try:
            with pytest.raises(ConfigurationError,
                               match=SHARD_SERVERS_ENV_VAR):
                engine.run([job])
        finally:
            engine.close()

    def test_steps_knob_exceeding_trace_raises(self):
        trace = small_trace(steps=24)
        engine = BatchSimulationEngine(n_workers=1, prefer="serial",
                                       shard=True, shard_steps=25)
        job = SimulationJob(trace=trace, config=teg_original())
        try:
            with pytest.raises(ConfigurationError,
                               match=SHARD_STEPS_ENV_VAR):
                engine.run([job])
        finally:
            engine.close()

    def test_shard_false_never_shards(self):
        trace = small_trace()
        engine = BatchSimulationEngine(n_workers=1, prefer="serial",
                                       shard=False, shard_servers=20)
        job = SimulationJob(trace=trace, config=teg_original())
        try:
            batch = engine.run([job])
        finally:
            engine.close()
        assert not batch.failures
        assert batch.results[0].metrics.n_shards == 0

    def test_auto_shard_threshold(self):
        # Below the cell threshold and with no knobs, jobs run whole.
        trace = small_trace()
        assert trace.n_steps * trace.n_servers < AUTO_SHARD_MIN_CELLS
        engine = BatchSimulationEngine(n_workers=1, prefer="serial")
        job = SimulationJob(trace=trace, config=teg_original())
        try:
            batch = engine.run([job])
        finally:
            engine.close()
        assert batch.results[0].metrics.n_shards == 0
        assert batch.metrics.shards == 0


class TestRunShardValidation:
    def test_tile_shape_mismatch_raises(self):
        trace = small_trace()
        spec = ShardSpec(index=0, step_start=0, step_stop=5,
                         server_start=0, server_stop=20,
                         circ_start=0, circ_stop=1)
        with pytest.raises(ConfigurationError, match="expects"):
            run_shard(trace, spec, teg_original())

    def test_fault_shard_must_span_cluster(self):
        trace = small_trace()
        spec = ShardSpec(index=0, step_start=0, step_stop=trace.n_steps,
                         server_start=20, server_stop=40,
                         circ_start=1, circ_stop=2)
        tile = trace.window(0, trace.n_steps, 20, 40)
        faults = FaultSchedule(specs=[FaultSpec(kind="sensor_bias",
                                                magnitude=0.05)], seed=1)
        with pytest.raises(ConfigurationError, match="time only"):
            run_shard(tile, spec, teg_original(), faults=faults)

    def test_trace_narrower_than_circulation_raises(self):
        trace = small_trace(n_servers=10)
        with pytest.raises(ConfigurationError, match="circulation"):
            simulate_sharded(trace, teg_original(), shard_steps=5)


class TestPrimeDecisions:
    def test_memoising_policy_gets_primed_cache(self):
        trace = small_trace()
        cache = prime_decisions(trace, teg_original())
        assert cache is not None
        assert len(cache) > 0
        # Stats are reset: shards account their own lookups.
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_pure_policies_skip_priming(self):
        trace = small_trace()
        for policy in ("analytic", "static"):
            config = SimulationConfig(name=policy, policy=policy)
            assert prime_decisions(trace, config) is None

    def test_store_bounded_by_quantisation(self):
        # Twice the steps must not grow the store past the bucket bound
        # (#buckets x #distinct group sizes) — the payload-size
        # independence hinges on this.
        config = teg_original()
        short = prime_decisions(small_trace(steps=24), config)
        resolution = 0.005  # LookupSpacePolicy default
        bound = (int(1 / resolution) + 2) * 2  # two group sizes (20, 7)
        assert len(short) <= bound

    def test_clone_cache_shares_store_not_stats(self):
        trace = small_trace()
        primed = prime_decisions(trace, teg_original())
        clone = clone_cache(primed)
        assert clone is not primed
        assert clone._store == primed._store
        clone.stats.hits += 5
        assert primed.stats.hits == 0
        assert clone_cache(None) is None


class TestPayloadSizeIndependence:
    """Worker payloads must not grow with the trace or the shard count."""

    def payload_for(self, steps):
        trace = small_trace(steps=steps)
        ref = SharedTraceRef(shm_name="test-segment",
                             shape=(trace.n_steps, trace.n_servers),
                             dtype="float64",
                             interval_s=trace.interval_s,
                             name=trace.name,
                             row_start=0, row_stop=min(8, trace.n_steps),
                             col_start=0, col_stop=trace.n_servers)
        spec = ShardSpec(index=0, step_start=0,
                         step_stop=min(8, trace.n_steps),
                         server_start=0, server_stop=trace.n_servers,
                         circ_start=0, circ_stop=3)
        return _ShardPayload(
            trace_ref=ref, spec=spec, config=teg_original(),
            cpu_model=None, teg_module=None, faults=None,
            cache_resolution=0.005,
            decisions=prime_decisions(trace, teg_original()))

    def test_pickled_size_independent_of_trace_length(self):
        small = len(pickle.dumps(self.payload_for(steps=24)))
        large = len(pickle.dumps(self.payload_for(steps=24 * 40)))
        # The primed store is bounded by the policy quantisation (at
        # most one entry per (bucket, group size) pair), so a 40x
        # longer trace cannot scale the payload with it — only fill in
        # more of the bounded bucket range.
        assert large < small * 4
        assert large < 64 * 1024


# ----------------------------------------------------------------------
# Streaming pipeline (ISSUE 9): barrier-free merge, autotune, zero-copy
# ----------------------------------------------------------------------

import random  # noqa: E402

import numpy as np  # noqa: E402

from repro.core.engine import simulate  # noqa: E402
from repro.core.shard import (  # noqa: E402
    COLUMN_PLANES,
    SHARD_AUTOTUNE_ENV_VAR,
    ShardColumnRef,
    StreamingMerge,
    _WORKER_COLUMN_BLOCKS,
    _column_block,
    _publish_columns,
    merge_shard_outcomes,
    resolve_shard_autotune,
)
from repro.errors import ResultIntegrityError  # noqa: E402


def sharded_outcomes(trace, config, specs):
    """Run every spec serially against a shared primed cache."""
    primed = prime_decisions(trace, config)
    outcomes = []
    for spec in specs:
        tile = trace.window(spec.step_start, spec.step_stop,
                            spec.server_start, spec.server_stop)
        outcomes.append(run_shard(tile, spec, config,
                                  cache=clone_cache(primed)))
    return outcomes


class TestStreamingMerge:
    """Fold-as-they-land merge: order-free bit-identity and auditing."""

    def setup_run(self):
        trace, config = small_trace(), teg_original()
        specs = plan_shards(trace.n_steps, trace.n_servers,
                            config.circulation_size,
                            shard_servers=20, shard_steps=8)
        assert len(specs) > 3
        return trace, config, specs, sharded_outcomes(trace, config, specs)

    def test_any_completion_order_matches_unsharded(self):
        trace, config, specs, outcomes = self.setup_run()
        reference = simulate(trace, config, mode="kernel")
        for seed in (0, 1, 2):
            shuffled = list(outcomes)
            random.Random(seed).shuffle(shuffled)
            merge = StreamingMerge(trace, config, kind="kernel")
            for outcome in shuffled:
                merge.add(outcome)
            result = merge.result()
            assert result.records == reference.records
            assert result.violations == reference.violations
        assert merge.n_added == len(specs)

    def test_barriered_wrapper_matches_streaming(self):
        trace, config, _, outcomes = self.setup_run()
        merge = StreamingMerge(trace, config, kind="kernel")
        for outcome in outcomes:
            merge.add(outcome)
        streamed = merge.result()
        stitched = merge_shard_outcomes(trace, config, outcomes)
        assert stitched.records == streamed.records
        assert stitched.violations == streamed.violations

    def test_overlap_rejected_at_add_time(self):
        trace, config, _, outcomes = self.setup_run()
        merge = StreamingMerge(trace, config, kind="kernel")
        merge.add(outcomes[0])
        # A double dispatch is caught the moment it lands, naming the
        # shard — not buried in a post-hoc audit.
        with pytest.raises(ResultIntegrityError, match="overlaps"):
            merge.add(outcomes[0])

    def test_uncovered_cells_rejected_at_result_time(self):
        trace, config, _, outcomes = self.setup_run()
        merge = StreamingMerge(trace, config, kind="kernel")
        merge.add(outcomes[0])
        with pytest.raises(ResultIntegrityError, match="never covered"):
            merge.result()

    def test_zero_outcomes_rejected(self):
        trace, config = small_trace(), teg_original()
        with pytest.raises(ConfigurationError, match="zero shard"):
            StreamingMerge(trace, config, kind="kernel").result()
        with pytest.raises(ConfigurationError, match="zero shard"):
            merge_shard_outcomes(trace, config, [])

    def test_unknown_kind_rejected(self):
        trace, config = small_trace(), teg_original()
        with pytest.raises(ConfigurationError, match="kind"):
            StreamingMerge(trace, config, kind="speculative")

    def test_phase_timings_aggregate_across_shards(self):
        trace, config, specs, outcomes = self.setup_run()
        merge = StreamingMerge(trace, config, kind="kernel")
        for outcome in outcomes:
            assert outcome.timings is not None
            merge.add(outcome)
        merge.result()
        timings = merge.timings
        assert timings is not None
        for phase in ("decide_s", "evaluate_s", "reduce_s"):
            total = sum(getattr(o.timings, phase) for o in outcomes)
            assert getattr(timings, phase) == pytest.approx(total)
        assert timings.fold_s > 0.0
        assert merge.cache_hits + merge.cache_misses > 0


class TestResolveShardAutotune:
    def test_explicit_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(SHARD_AUTOTUNE_ENV_VAR, "on")
        assert resolve_shard_autotune(False) is False
        monkeypatch.setenv(SHARD_AUTOTUNE_ENV_VAR, "off")
        assert resolve_shard_autotune(True) is True

    def test_environment_words(self, monkeypatch):
        for word, expected in (("1", True), ("true", True),
                               ("YES", True), ("on", True),
                               ("0", False), ("false", False),
                               ("no", False), ("OFF", False),
                               ("", False)):
            monkeypatch.setenv(SHARD_AUTOTUNE_ENV_VAR, word)
            assert resolve_shard_autotune(None) is expected
        monkeypatch.delenv(SHARD_AUTOTUNE_ENV_VAR)
        assert resolve_shard_autotune(None) is False

    def test_garbage_rejected_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv(SHARD_AUTOTUNE_ENV_VAR, "sometimes")
        with pytest.raises(ConfigurationError,
                           match=SHARD_AUTOTUNE_ENV_VAR):
            resolve_shard_autotune(None)


class TestShardAutotune:
    """Throughput-driven shard coarsening must never change the result."""

    def run_sharded(self, trace, autotune):
        engine = BatchSimulationEngine(
            n_workers=2, prefer="thread", shard=True,
            shard_servers=20, shard_steps=6, shard_autotune=autotune)
        batch = engine.run([SimulationJob(trace, teg_original())])
        assert batch.ok
        return batch.results[0]

    def test_autotuned_run_is_bit_identical(self):
        trace = small_trace(n_servers=80, steps=48)
        planned = len(plan_shards(48, 80,
                                  teg_original().circulation_size,
                                  shard_servers=20, shard_steps=6))
        reference = simulate(trace, teg_original(), mode="kernel")
        tuned = self.run_sharded(trace, autotune=True)
        assert tuned.records == reference.records
        assert tuned.violations == reference.violations
        # The re-plan may coarsen (fewer shards) but never refine.
        assert 1 <= tuned.metrics.n_shards <= planned

    def test_autotune_off_executes_the_planned_tiling(self):
        trace = small_trace(n_servers=80, steps=48)
        planned = len(plan_shards(48, 80,
                                  teg_original().circulation_size,
                                  shard_servers=20, shard_steps=6))
        fixed = self.run_sharded(trace, autotune=False)
        assert fixed.metrics.n_shards == planned


class TestZeroCopyColumns:
    """Worker-published plane tiles must merge exactly like fat outcomes."""

    def test_published_and_fat_outcomes_mix_bit_identically(self):
        from multiprocessing import shared_memory

        trace, config = small_trace(), teg_original()
        reference = simulate(trace, config, mode="kernel")
        specs = plan_shards(trace.n_steps, trace.n_servers,
                            config.circulation_size,
                            shard_servers=20, shard_steps=8)
        outcomes = sharded_outcomes(trace, config, specs)
        n_circs = -(-trace.n_servers // config.circulation_size)
        shape = (len(COLUMN_PLANES), trace.n_steps, n_circs)
        block = shared_memory.SharedMemory(
            create=True, size=int(np.prod(shape)) * 8)
        try:
            planes = np.ndarray(shape, dtype=np.float64, buffer=block.buf)
            ref = ShardColumnRef(shm_name=block.name,
                                 n_steps=trace.n_steps, n_circs=n_circs)
            assert ref.shape == shape
            # Publish every other outcome through the worker path; the
            # rest stay fat (the thread-pool / resume shape).  Both
            # kinds must mix freely within one merge.
            for outcome in outcomes[::2]:
                _publish_columns(ref, outcome)
                assert outcome.columns is None
                assert outcome.sizes is not None
                assert outcome.violation_counts is not None
            merge = StreamingMerge(trace, config, kind="kernel",
                                   plane_block=planes)
            for outcome in outcomes:
                merge.add(outcome)
            result = merge.result()
            assert result.records == reference.records
            assert result.violations == reference.violations
            merge.release_planes()
            del planes
        finally:
            entry = _WORKER_COLUMN_BLOCKS.pop(block.name, None)
            if entry is not None:
                entry[0].close()
            block.close()
            block.unlink()

    def test_attached_block_is_cached_and_swaps_per_job(self):
        from multiprocessing import shared_memory

        shape = (len(COLUMN_PLANES), 4, 2)
        blocks = [shared_memory.SharedMemory(
            create=True, size=int(np.prod(shape)) * 8) for _ in range(2)]
        try:
            refs = [ShardColumnRef(shm_name=b.name, n_steps=4, n_circs=2)
                    for b in blocks]
            first = _column_block(refs[0])
            assert _column_block(refs[0]) is first
            assert blocks[0].name in _WORKER_COLUMN_BLOCKS
            # Attaching the next job's block unmaps the previous one:
            # worker memory stays bounded at one block.
            _column_block(refs[1])
            assert blocks[0].name not in _WORKER_COLUMN_BLOCKS
            assert blocks[1].name in _WORKER_COLUMN_BLOCKS
        finally:
            for b in blocks:
                entry = _WORKER_COLUMN_BLOCKS.pop(b.name, None)
                if entry is not None:
                    entry[0].close()
                b.close()
                b.unlink()

    def test_plane_block_shape_validated(self):
        trace, config = small_trace(), teg_original()
        with pytest.raises(ConfigurationError, match="plane block"):
            StreamingMerge(trace, config, kind="kernel",
                           plane_block=np.empty((1, 2, 3)))

    def test_slimmed_outcome_without_summaries_rejected(self):
        trace, config = small_trace(), teg_original()
        specs = plan_shards(trace.n_steps, trace.n_servers,
                            config.circulation_size, shard_steps=8)
        outcome = sharded_outcomes(trace, config, specs[:1])[0]
        outcome.columns = None  # neither columns nor published planes
        merge = StreamingMerge(trace, config, kind="kernel")
        with pytest.raises(ConfigurationError, match="neither columns"):
            merge.add(outcome)

"""Regenerate the engine golden fixtures in this directory.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate_engine_goldens.py

The fixtures pin per-step cluster aggregates of the *serial*
``DatacenterSimulator`` (the source of truth) on a small seeded trace
under the baseline (*TEG_Original*) and H2P (*TEG_LoadBalance*) schemes.
``tests/core/test_engine.py`` asserts that both the serial and the batch
engine paths still reproduce these numbers; regenerate only after a
deliberate recalibration and record the change in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import teg_loadbalance, teg_original
from repro.core.simulator import DatacenterSimulator
from repro.workloads.synthetic import common_trace

GOLDEN_DIR = Path(__file__).parent

#: The fixed scenario every fixture derives from.
TRACE_KWARGS = dict(n_servers=40, duration_s=4 * 3600.0,
                    interval_s=300.0, seed=12)

#: Per-step fields pinned by the fixtures.
RECORD_FIELDS = (
    "time_s",
    "generation_per_cpu_w",
    "cpu_power_per_cpu_w",
    "max_cpu_temp_c",
    "chiller_power_w",
    "tower_power_w",
    "pump_power_w",
)


def golden_path(scheme: str) -> Path:
    """Fixture file for one scheme."""
    return GOLDEN_DIR / f"engine_{scheme}_common40.json"


def build_golden(config) -> dict:
    """Serial ground-truth aggregates for one scheme."""
    trace = common_trace(**TRACE_KWARGS)
    result = DatacenterSimulator(trace, config).run()
    return {
        "trace": dict(TRACE_KWARGS, name=trace.name),
        "scheme": result.scheme,
        "n_steps": len(result.records),
        "records": {
            name: [getattr(record, name) for record in result.records]
            for name in RECORD_FIELDS
        },
    }


def main() -> None:
    for config in (teg_original(), teg_loadbalance()):
        golden = build_golden(config)
        path = golden_path(config.name)
        path.write_text(json.dumps(golden, indent=1) + "\n")
        print(f"wrote {path} ({golden['n_steps']} steps)")


if __name__ == "__main__":
    main()
